"""Simulated processes: crash/restart-aware nodes with safe timers.

A :class:`SimProcess` is a network node that owns timers.  Crashing a
process must invalidate every timer it armed — a restarted broker must not
be poked by callbacks belonging to its previous incarnation — so timers
are wrapped with an *epoch* check: :meth:`crash` bumps the epoch and all
older timers become no-ops.
"""

from __future__ import annotations

from typing import Any, Callable

from .network import Node, SimNetwork
from .scheduler import Scheduler, TimerHandle

__all__ = ["SimProcess"]


class SimProcess(Node):
    """Base class for brokers and clients living in the simulator."""

    def __init__(self, node_id: str, network: SimNetwork, scheduler: Scheduler):
        super().__init__(node_id)
        self.network = network
        self.scheduler = scheduler
        self.epoch = 0

    # -- timers ---------------------------------------------------------

    def schedule(self, delay: float, fn: Callable[[], None]) -> TimerHandle:
        """Arm a timer tied to this incarnation of the process."""
        epoch = self.epoch
        return self.scheduler.call_later(delay, lambda: self._fire(epoch, fn))

    def schedule_at(self, when: float, fn: Callable[[], None]) -> TimerHandle:
        epoch = self.epoch
        return self.scheduler.call_at(when, lambda: self._fire(epoch, fn))

    def every(self, interval: float, fn: Callable[[], None]) -> None:
        """Run ``fn`` every ``interval`` seconds until crash."""
        epoch = self.epoch

        def tick() -> None:
            if self.epoch != epoch or not self.alive:
                return
            fn()
            self.scheduler.call_later(interval, tick)

        self.scheduler.call_later(interval, tick)

    def _fire(self, epoch: int, fn: Callable[[], None]) -> None:
        if self.epoch == epoch and self.alive:
            fn()

    def now(self) -> float:
        return self.scheduler.now

    # -- lifecycle --------------------------------------------------------

    def crash(self) -> None:
        """Kill the process: drop all soft state hooks and timers.

        Subclasses override :meth:`on_crash` to discard their soft state.
        """
        if not self.alive:
            return
        self.alive = False
        self.epoch += 1
        self.on_crash()

    def restart(self) -> None:
        """Bring the process back with a fresh epoch."""
        if self.alive:
            return
        self.alive = True
        self.epoch += 1
        self.on_restart()

    def on_crash(self) -> None:  # pragma: no cover - default no-op
        """Hook: release soft state."""

    def on_restart(self) -> None:  # pragma: no cover - default no-op
        """Hook: recover from stable storage, restart timers."""

    # -- messaging ---------------------------------------------------------

    def send(self, dst: str, message: Any, size_bytes: int = 100) -> bool:
        if not self.alive:
            return False
        return self.network.send(self.node_id, dst, message, size_bytes)

    def receive(self, src: str, message: Any) -> None:
        if not self.alive:
            return
        self.on_message(src, message)

    def on_message(self, src: str, message: Any) -> None:
        raise NotImplementedError
