"""Publisher and subscriber clients, plus exactly-once verification.

Clients are thin: a publisher stamps each event with its publish time and
hands it to its PHB; a subscriber records deliveries, measures end-to-end
latency, and *checks the paper's service specification online*:

* Safety (a): every delivered message matches the subscription;
* Safety (b): per subend stream, delivery in strictly increasing tick
  order (and therefore at-most-once);
* Liveness: every published matching message eventually delivered —
  checked offline by :class:`DeliveryChecker` against the ground-truth
  publication record, including the *gapless* property (between two
  adjacently delivered events, no skipped matching event).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple

from .broker.simbroker import SimBroker, SubscriberHooks
from .core.subend import Subscription
from .core.ticks import Tick
from .matching.events import Event
from .obs.hub import MetricsHub
from .sim.scheduler import Scheduler

__all__ = [
    "PublisherClient",
    "SubscriberClient",
    "DeliveryChecker",
    "OrderViolation",
    "DuplicateDelivery",
]


class OrderViolation(AssertionError):
    """A message was delivered out of tick order within a subend stream."""


class DuplicateDelivery(AssertionError):
    """The same tick was delivered twice to one subscriber."""


class PublisherClient:
    """Publishes a stream of events to one pubend at a fixed rate.

    Every event is stamped with a ``ts`` attribute (its publish time),
    which subscribers use to measure end-to-end latency, and a ``seq``
    attribute for ground-truth bookkeeping.  When the PHB is down the
    publish fails silently and the message is, by definition, never
    published (it is recorded as a failed attempt).
    """

    def __init__(
        self,
        broker: SimBroker,
        pubend: str,
        scheduler: Scheduler,
        rate: float,
        make_attributes: Optional[Callable[[int], Dict[str, Any]]] = None,
        body_bytes: int = 0,
        max_messages: Optional[int] = None,
    ):
        if rate <= 0:
            raise ValueError("rate must be positive")
        self.broker = broker
        self.pubend = pubend
        self.scheduler = scheduler
        self.interval = 1.0 / rate
        self.make_attributes = make_attributes
        self.body = "x" * body_bytes if body_bytes else None
        #: Stop after exactly this many publish *attempts* (failed
        #: attempts count): a count-limited workload attempts the same
        #: seq sequence on any backend, which is what the conformance
        #: harness keys its cross-stack comparison on.
        self.max_messages = max_messages
        self.seq = 0
        #: (seq, tick, event) for successfully published messages.
        self.published: List[Tuple[int, Tick, Event]] = []
        self.failed_attempts = 0
        self._running = False

    def start(self, at: Optional[float] = None) -> None:
        self._running = True
        start_time = at if at is not None else self.scheduler.now
        self.scheduler.call_at(start_time, self._tick)

    def stop(self) -> None:
        self._running = False

    def publish_once(self) -> Optional[Tick]:
        attributes: Dict[str, Any] = {"pub": self.pubend, "seq": self.seq}
        if self.make_attributes is not None:
            attributes.update(self.make_attributes(self.seq))
        attributes["ts"] = self.scheduler.now
        event = Event(attributes, body=self.body)
        tick = self.broker.publish(self.pubend, event)
        if tick is None:
            self.failed_attempts += 1
        else:
            self.published.append((self.seq, tick, event))
        self.seq += 1
        return tick

    @property
    def done(self) -> bool:
        """True once a count-limited publisher has made all its attempts."""
        return self.max_messages is not None and self.seq >= self.max_messages

    def _tick(self) -> None:
        if not self._running:
            return
        if self.done:
            self._running = False
            return
        self.publish_once()
        self.scheduler.call_later(self.interval, self._tick)


class SubscriberClient(SubscriberHooks):
    """Records deliveries and enforces the online safety checks."""

    def __init__(
        self,
        subscriber_id: str,
        metrics: Optional[MetricsHub] = None,
        check_total_order: bool = False,
    ):
        self.subscriber_id = subscriber_id
        self.metrics = metrics
        self.check_total_order = check_total_order
        #: (pubend, tick, event, deliver_time) in delivery order.
        self.received: List[Tuple[str, Tick, Any, float]] = []
        self._last_tick_per_pubend: Dict[str, Tick] = {}
        self._last_tick_global: Tick = -1
        self._seen: Set[Tuple[str, Tick]] = set()

    def on_delivery(self, pubend: str, tick: Tick, payload: Any, time: float) -> None:
        key = (pubend, tick)
        if key in self._seen:
            raise DuplicateDelivery(
                f"{self.subscriber_id}: tick {tick} of {pubend} delivered twice"
            )
        self._seen.add(key)
        last = self._last_tick_per_pubend.get(pubend, -1)
        if tick <= last:
            raise OrderViolation(
                f"{self.subscriber_id}: tick {tick} of {pubend} after {last}"
            )
        self._last_tick_per_pubend[pubend] = tick
        if self.check_total_order:
            if tick <= self._last_tick_global:
                raise OrderViolation(
                    f"{self.subscriber_id}: total order broken: "
                    f"{tick} after {self._last_tick_global}"
                )
            self._last_tick_global = tick
        self.received.append((pubend, tick, payload, time))
        if self.metrics is not None:
            send_time = _send_time_of(payload)
            if send_time is not None:
                self.metrics.latency.record(self.subscriber_id, send_time, time)

    def delivered_ticks(self, pubend: str) -> List[Tick]:
        return [t for (p, t, __, ___) in self.received if p == pubend]

    def count(self) -> int:
        return len(self.received)


def _send_time_of(payload: Any) -> Optional[float]:
    if isinstance(payload, Event):
        value = payload.get_attr("ts")
        return float(value) if value is not None else None
    if isinstance(payload, dict):
        value = payload.get("ts")
        return float(value) if value is not None else None
    return None


@dataclass
class CheckReport:
    """Outcome of an offline exactly-once verification."""

    subscriber: str
    matching_published: int
    delivered: int
    missing: List[Tuple[str, Tick]] = field(default_factory=list)
    unexpected: List[Tuple[str, Tick]] = field(default_factory=list)

    @property
    def exactly_once(self) -> bool:
        return not self.missing and not self.unexpected


class DeliveryChecker:
    """Offline verifier of the paper's service specification.

    Given the ground truth (everything successfully published, per
    publisher client) and a subscriber's delivery record, checks:

    * every delivered message was published and matches the predicate
      (safety a);
    * no published matching message is missing (liveness + gaplessness —
      a complete in-order subsequence has no internal gaps by
      construction, because the online checks enforce order and the
      set-difference here catches anything skipped).
    """

    def __init__(self, publishers: Sequence[PublisherClient]):
        self.publishers = list(publishers)

    def check(
        self, client: SubscriberClient, subscription: Subscription
    ) -> CheckReport:
        expected: Set[Tuple[str, Tick]] = set()
        for publisher in self.publishers:
            if publisher.pubend not in subscription.pubends:
                continue
            for __, tick, event in publisher.published:
                if subscription.predicate(event):
                    expected.add((publisher.pubend, tick))
        delivered = {(p, t) for (p, t, __, ___) in client.received}
        missing = sorted(expected - delivered)
        unexpected = sorted(delivered - expected)
        return CheckReport(
            subscriber=client.subscriber_id,
            matching_published=len(expected),
            delivered=len(delivered),
            missing=missing,
            unexpected=unexpected,
        )
