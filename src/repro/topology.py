"""Virtual/physical topology builder and complete simulated systems.

The paper maps *virtual brokers* onto *cells* of physical broker machines
connected by *link bundles* (section 3, Figure 3).  :class:`Topology`
declares cells, physical links, pubend placements and per-pubend spanning
trees over cells; :meth:`Topology.build` realizes the declaration as a
:class:`System`: a deterministic simulator populated with
:class:`~repro.broker.simbroker.SimBroker` processes, clients and fault
injection.

Two canned topologies reproduce the paper's setups:

* :func:`two_broker_topology` — the asymmetric PHB→SHB pair of the
  overhead experiments (section 4.1, Figures 4-5);
* :func:`figure3_topology` — the 10-broker / 8-cell network of the
  failure-injection experiments (section 4.2, Figures 6-8): PHB ``p1``,
  intermediate cells ``IB1`` = {b1, b2} and ``IB2`` = {b3, b4}, SHBs
  ``s1``/``s2`` under IB1 and ``s3``/``s4``/``s5`` under IB2.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

from .broker.simbroker import SimBroker
from .broker.state import BrokerTopologyInfo, PubendRoute
from .core.config import LivenessParams
from .core.edges import FilterEdge, MATCH_ALL
from .core.subend import Subscription
from .client import PublisherClient, SubscriberClient
from .facade import resolve_predicate
from .metrics.cpu import CostModel
from .obs.hub import MetricsHub
from .obs.observability import Observability
from .sim.network import SimNetwork
from .sim.scheduler import Scheduler
from .storage.log import MemoryLog, MessageLog

__all__ = [
    "Topology",
    "TopologyPlan",
    "System",
    "two_broker_topology",
    "figure3_topology",
    "balanced_pubend_names",
]


@dataclass
class _PubendDecl:
    pubend: str
    host_broker: str
    preassign_window: Optional[float] = None


@dataclass
class TopologyPlan:
    """A topology resolved into runtime-agnostic facts."""

    #: Per-broker routing/topology info.
    infos: Dict[str, "BrokerTopologyInfo"]
    #: Physical links as (a, b, link-params).
    links: List[Tuple[str, str, Dict[str, Any]]]
    #: Pubend placements as
    #: (pubend_id, host_broker, slot, n_slots, preassign_window).
    pubends: List[Tuple[str, str, int, int, Optional[float]]]


@dataclass
class _TreeEdge:
    parent_cell: str
    child_cell: str
    predicate: Callable[[Any], bool]


class Topology:
    """Declarative description of a Gryphon deployment."""

    def __init__(self) -> None:
        self._cells: Dict[str, List[str]] = {}
        self._cell_of: Dict[str, str] = {}
        self._links: List[Tuple[str, str, Dict[str, Any]]] = []
        self._pubends: Dict[str, _PubendDecl] = {}
        self._trees: Dict[str, List[_TreeEdge]] = {}

    # -- declaration -----------------------------------------------------

    def cell(self, cell_id: str, *brokers: str) -> "Topology":
        """Declare a cell and its physical brokers."""
        if cell_id in self._cells:
            raise ValueError(f"cell {cell_id!r} already declared")
        if not brokers:
            raise ValueError("a cell needs at least one broker")
        self._cells[cell_id] = list(brokers)
        for broker in brokers:
            if broker in self._cell_of:
                raise ValueError(f"broker {broker!r} already in a cell")
            self._cell_of[broker] = cell_id
        return self

    def link(self, a: str, b: str, **params: Any) -> "Topology":
        """Declare a physical link (latency/jitter/drop params pass
        through to :class:`~repro.sim.network.SimLink`)."""
        self._links.append((a, b, params))
        return self

    def physical_links(self) -> List[Tuple[str, str]]:
        """Every declared physical link as ``(a, b)`` endpoint pairs.

        Fault schedulers (e.g. the ``repro.check`` scenario generator)
        target links through this instead of re-deriving the canned
        topologies' wiring by hand, so the fault surface can never drift
        from the topology it is injected into."""
        return [(a, b) for a, b, __ in self._links]

    def pubend(
        self,
        pubend_id: str,
        host_broker: str,
        *legacy: Any,
        preassign_window: Optional[float] = None,
    ) -> "Topology":
        """Place a pubend on its hosting broker (the PHB).

        ``preassign_window`` opts this pubend into pre-assigned finality
        (section 2.2): set it to the pubend's expected publication period
        so downstream merges never wait on it.  ``None`` falls back to
        the system-wide :attr:`LivenessParams.preassign_window`.
        It is keyword-only; passing it positionally still works but warns.
        """
        if legacy:
            warnings.warn(
                "passing preassign_window positionally to Topology.pubend is "
                "deprecated; use preassign_window=...",
                DeprecationWarning,
                stacklevel=2,
            )
            if len(legacy) > 1:
                raise TypeError(
                    f"pubend() takes at most 3 positional arguments "
                    f"({2 + len(legacy)} given)"
                )
            preassign_window = legacy[0]
        if pubend_id in self._pubends:
            raise ValueError(f"pubend {pubend_id!r} already declared")
        self._pubends[pubend_id] = _PubendDecl(
            pubend_id, host_broker, preassign_window
        )
        self._trees.setdefault(pubend_id, [])
        return self

    def route(
        self,
        pubend_id: str,
        parent_cell: str,
        child_cell: str,
        predicate: Optional[Callable[[Any], bool]] = None,
    ) -> "Topology":
        """Add an edge of the pubend's spanning tree over cells, with an
        optional filter predicate on the edge."""
        self._trees.setdefault(pubend_id, []).append(
            _TreeEdge(parent_cell, child_cell, predicate or MATCH_ALL)
        )
        return self

    def route_all(
        self, parent_cell: str, child_cell: str,
        predicate: Optional[Callable[[Any], bool]] = None,
    ) -> "Topology":
        """Add the same tree edge to every declared pubend's tree."""
        for pubend_id in self._pubends:
            self.route(pubend_id, parent_cell, child_cell, predicate)
        return self

    # -- realization -------------------------------------------------------

    def plan(self) -> "TopologyPlan":
        """The topology resolved into per-broker routing facts.

        Shared by every runtime: the simulator's :meth:`build` and the
        asyncio runtime's builder both realize the same plan.
        """
        neighbors: Dict[str, set] = {b: set() for b in self._cell_of}
        for a, b, __ in self._links:
            neighbors[a].add(b)
            neighbors[b].add(a)
        brokers_of_cell = {c: tuple(bs) for c, bs in self._cells.items()}
        infos: Dict[str, BrokerTopologyInfo] = {}
        for cell_id, cell_brokers in self._cells.items():
            routes = self._routes_for_cell(cell_id)
            for broker_id in cell_brokers:
                infos[broker_id] = BrokerTopologyInfo(
                    broker_id=broker_id,
                    cell=cell_id,
                    neighbors=frozenset(neighbors[broker_id]),
                    cell_of=dict(self._cell_of),
                    brokers_of_cell=brokers_of_cell,
                    routes=routes,
                )
        n_slots = max(len(self._pubends), 1)
        pubends = [
            (pubend_id, decl.host_broker, slot, n_slots, decl.preassign_window)
            for slot, (pubend_id, decl) in enumerate(sorted(self._pubends.items()))
        ]
        return TopologyPlan(
            infos=infos,
            links=[(a, b, dict(params)) for a, b, params in self._links],
            pubends=pubends,
        )

    def _tree_children(self, pubend_id: str) -> Dict[str, List[_TreeEdge]]:
        children: Dict[str, List[_TreeEdge]] = {}
        for edge in self._trees.get(pubend_id, []):
            children.setdefault(edge.parent_cell, []).append(edge)
        return children

    def _routes_for_cell(self, cell_id: str) -> Dict[str, PubendRoute]:
        routes: Dict[str, PubendRoute] = {}
        for pubend_id, decl in self._pubends.items():
            root_cell = self._cell_of[decl.host_broker]
            children = self._tree_children(pubend_id)
            # Find this cell's parent in the tree (None at the root;
            # absent entirely if the cell is not in this pubend's tree).
            parent: Optional[str] = None
            in_tree = cell_id == root_cell
            for edge in self._trees.get(pubend_id, []):
                if edge.child_cell == cell_id:
                    parent = edge.parent_cell
                    in_tree = True
            if not in_tree:
                continue
            downstream = {
                edge.child_cell: FilterEdge(edge.predicate, name=f"{pubend_id}->{edge.child_cell}")
                for edge in children.get(cell_id, [])
            }
            subtree = {
                edge.child_cell: frozenset(
                    grandchild.child_cell
                    for grandchild in children.get(edge.child_cell, [])
                )
                for edge in children.get(cell_id, [])
            }
            routes[pubend_id] = PubendRoute(
                pubend=pubend_id,
                upstream_cell=parent,
                downstream=downstream,
                subtree=subtree,
            )
        return routes

    def build(
        self,
        seed: int = 0,
        params: Optional[LivenessParams] = None,
        cost_model: Optional[CostModel] = None,
        log_commit_latency: float = 0.1,
        log_factory: Optional[Callable[[str], MessageLog]] = None,
        client_latency: float = 0.0005,
        broker_factory: Optional[Callable[..., Any]] = None,
    ) -> "System":
        """Realize the topology as a ready-to-run simulated system.

        ``log_commit_latency`` defaults to 100 ms — the paper's observed
        latency gap between GD and best-effort delivery, attributed to
        logging at the PHB (section 4.1).
        """
        params = params if params is not None else LivenessParams()
        scheduler = Scheduler(seed=seed)
        obs = Observability()
        network = SimNetwork(scheduler, instruments=obs.instruments)
        metrics = obs.hub
        plan = self.plan()
        factory = broker_factory if broker_factory is not None else SimBroker
        brokers: Dict[str, SimBroker] = {}
        for broker_id, info in plan.infos.items():
            broker = factory(
                broker_id,
                network,
                scheduler,
                info,
                params,
                metrics=metrics,
                cost_model=cost_model,
                client_latency=client_latency,
                obs=obs,
            )
            network.add_node(broker)
            brokers[broker_id] = broker
        for a, b, link_params in plan.links:
            network.connect(a, b, **link_params)
        system = System(scheduler, network, brokers, metrics, params, obs=obs)
        for pubend_id, host_broker, slot, n_slots, preassign in plan.pubends:
            if log_factory is not None:
                log = log_factory(pubend_id)
            else:
                log = MemoryLog(commit_latency=log_commit_latency)
            brokers[host_broker].host_pubend(
                pubend_id, log, slot=slot, n_slots=n_slots,
                preassign_window=preassign,
            )
            system.pubend_hosts[pubend_id] = host_broker
        return system


class System:
    """A built, running simulated deployment."""

    def __init__(
        self,
        scheduler: Scheduler,
        network: SimNetwork,
        brokers: Dict[str, SimBroker],
        metrics: MetricsHub,
        params: LivenessParams,
        obs: Optional[Observability] = None,
    ):
        self.scheduler = scheduler
        self.network = network
        self.brokers = brokers
        self.metrics = metrics
        self.params = params
        #: Unified observability: instrument registry, recorders, CPU
        #: accountants and tracers behind one object (``system.obs``).
        self.obs = obs if obs is not None else Observability(hub=metrics)
        self.pubend_hosts: Dict[str, str] = {}
        self.publishers: List[PublisherClient] = []
        self.subscribers: Dict[str, SubscriberClient] = {}
        self.subscriptions: Dict[str, Subscription] = {}
        self._started = False

    # -- hosting -----------------------------------------------------------

    def host_pubend(
        self,
        pubend_id: str,
        broker_id: str,
        log: Optional[MessageLog] = None,
        *,
        slot: int = 0,
        n_slots: int = 1,
        preassign_window: Optional[float] = None,
    ) -> MessageLog:
        """Place a pubend on a broker after the system was built.

        Part of the :class:`~repro.facade.SystemFacade` surface shared
        with the asyncio runtime.  ``log`` defaults to a fresh
        :class:`MemoryLog`; the log in use is returned so callers can
        inspect or hand it to a restarted broker.  Pubends declared on
        the :class:`Topology` get their slots from the plan — a pubend
        hosted this way defaults to slot 0 of 1 and should only opt into
        total-order merges with explicit ``slot``/``n_slots``.
        """
        log = log if log is not None else MemoryLog()
        self.brokers[broker_id].host_pubend(
            pubend_id, log, slot=slot, n_slots=n_slots,
            preassign_window=preassign_window,
        )
        self.pubend_hosts[pubend_id] = broker_id
        return log

    # -- clients -----------------------------------------------------------

    def publisher(
        self,
        pubend: str,
        rate: float,
        make_attributes: Optional[Callable[[int], Dict[str, Any]]] = None,
        body_bytes: int = 0,
        max_messages: Optional[int] = None,
    ) -> PublisherClient:
        broker = self.brokers[self.pubend_hosts[pubend]]
        client = PublisherClient(
            broker,
            pubend,
            self.scheduler,
            rate,
            make_attributes=make_attributes,
            body_bytes=body_bytes,
            max_messages=max_messages,
        )
        self.publishers.append(client)
        return client

    def subscribe(
        self,
        subscriber_id: str,
        broker_id: str,
        pubends: Tuple[str, ...],
        predicate: Any = None,
        *legacy: Any,
        total_order: bool = False,
    ) -> SubscriberClient:
        """Attach a subscriber client at an SHB.

        ``predicate`` may be a subscription string (parsed), an AST
        :class:`~repro.matching.ast.Predicate`, a plain callable, or
        ``None`` (match everything).  ``total_order`` is keyword-only;
        passing it positionally still works but warns.
        """
        if legacy:
            warnings.warn(
                "passing total_order positionally to System.subscribe is "
                "deprecated; use total_order=...",
                DeprecationWarning,
                stacklevel=2,
            )
            if len(legacy) > 1:
                raise TypeError(
                    f"subscribe() takes at most 5 positional arguments "
                    f"({5 + len(legacy)} given)"
                )
            total_order = legacy[0]
        predicate = resolve_predicate(predicate)
        client = SubscriberClient(
            subscriber_id, metrics=self.metrics, check_total_order=total_order
        )
        subscription = Subscription(
            subscriber=subscriber_id,
            predicate=predicate,
            pubends=tuple(pubends),
            total_order=total_order,
        )
        self.brokers[broker_id].add_subscription(subscription, client)
        self.subscribers[subscriber_id] = client
        self.subscriptions[subscriber_id] = subscription
        return client

    # -- running --------------------------------------------------------------

    def start(self) -> None:
        """Arm all broker timers (idempotent)."""
        if self._started:
            return
        self._started = True
        for broker in self.brokers.values():
            broker.start()

    def run_until(self, deadline: float) -> float:
        """Run the simulation up to ``deadline``; returns the final
        simulated time."""
        self.start()
        self.scheduler.run_until(deadline)
        return self.scheduler.now

    def run_for(self, duration: float) -> float:
        """Run for ``duration`` simulated seconds; returns the final
        simulated time."""
        return self.run_until(self.scheduler.now + duration)

    @property
    def now(self) -> float:
        return self.scheduler.now

    # -- diagnostics --------------------------------------------------------

    def check_invariants(self) -> None:
        """Deep consistency sweep over every live broker's soft state.

        Asserts the stream invariants (coalesced runs, payloads exactly at
        D ticks, F ⇔ A linkage side conditions) in every istream and
        ostream, and cross-checks that no broker "knows" a data tick the
        hosting pubend never published.  Integration tests call this after
        every scenario; it turns silent state corruption into loud
        failures.
        """
        published: Dict[str, set] = {}
        for broker in self.brokers.values():
            if not broker.alive or getattr(broker, "engine", None) is None:
                continue
            engine = broker.engine
            if not hasattr(engine, "pubends"):
                continue  # baseline brokers keep no GD state
            for pubend_id, pubend in engine.pubends.items():
                pubend.stream.check_invariants()
                published[pubend_id] = {
                    entry.tick for entry in pubend.log.entries(pubend_id)
                }
        from .core.lattice import K

        for broker in self.brokers.values():
            if not broker.alive or getattr(broker, "engine", None) is None:
                continue
            engine = broker.engine
            if not hasattr(engine, "istreams"):
                continue
            for pubend_id, ist in engine.istreams.items():
                ist.stream.check_invariants()
                for cells in (engine.ostreams.get(pubend_id, {}),):
                    for ost in cells.values():
                        ost.stream.check_invariants()
                known = published.get(pubend_id)
                if known is None:
                    continue
                truncated = 0
                host = self.brokers.get(self.pubend_hosts.get(pubend_id, ""))
                if host is not None and getattr(host, "engine", None) is not None:
                    pb = host.engine.pubends.get(pubend_id)
                    if pb is not None:
                        truncated = pb.acked_up_to
                for run, value in ist.stream.knowledge.runs():
                    if value == K.D:
                        for tick in run:
                            assert tick in known or tick < truncated, (
                                f"{broker.node_id} fabricated D tick {tick} "
                                f"of {pubend_id}"
                            )


def two_broker_topology(
    n_intermediate_links: int = 1,
    link_latency: float = 0.002,
) -> Topology:
    """The asymmetric two-broker configuration of section 4.1.

    Publishers connect to ``phb``; subscribers connect to ``shb``; the
    brokers are joined by one link (the paper's 100 Mbps hop).
    """
    topo = Topology()
    topo.cell("PHB", "phb")
    topo.cell("SHB", "shb")
    topo.link("phb", "shb", latency=link_latency)
    return topo


def balanced_pubend_names(n: int, bundle_width: int = 2) -> List[str]:
    """``n`` pubend names whose link-bundle hash spreads evenly over a
    bundle of ``bundle_width`` links.

    The paper's failure tests rely on the 4 pubends splitting 2/2 over
    the two brokers of each intermediate cell ("b1 and b2 were splitting
    the input message load, i.e., each was handling messages from 2 of
    the 4 pubends").  Hashing arbitrary names gives an even split only in
    expectation, so experiment code picks names with the right residues.
    """
    from .broker.engine import stable_hash

    names: List[str] = []
    want = 0
    candidate = 0
    while len(names) < n:
        name = f"P{candidate}"
        candidate += 1
        if stable_hash(name) % bundle_width == want % bundle_width:
            names.append(name)
            want += 1
    return names


def figure3_topology(
    n_pubends: int = 4,
    link_latency: float = 0.002,
    pubend_names: Optional[List[str]] = None,
    preassign: Optional[Mapping[str, float]] = None,
) -> Topology:
    """The 10-broker, 8-cell failure-injection network of Figure 3.

    PHB cell {p1} hosts ``n_pubends`` pubends; intermediate cells
    IB1 = {b1, b2} and IB2 = {b3, b4} each have direct links to p1;
    SHB cells {s1}, {s2} hang off IB1 and {s3}, {s4}, {s5} off IB2.
    All intermediate filters pass everything (section 4.2).
    """
    topo = Topology()
    topo.cell("PHB", "p1")
    topo.cell("IB1", "b1", "b2")
    topo.cell("IB2", "b3", "b4")
    for i in range(1, 6):
        topo.cell(f"SHB{i}", f"s{i}")
    # Fat link PHB->IB1 and PHB->IB2: p1 has a direct link to each
    # intermediate broker.
    for b in ("b1", "b2", "b3", "b4"):
        topo.link("p1", b, latency=link_latency)
    # Cell-internal links for sideways routing.
    topo.link("b1", "b2", latency=link_latency / 2)
    topo.link("b3", "b4", latency=link_latency / 2)
    # IB1 serves s1, s2; IB2 serves s3, s4, s5 — each SHB linked to both
    # brokers of its intermediate cell (the virtual link is a bundle).
    for s in ("s1", "s2"):
        topo.link("b1", s, latency=link_latency)
        topo.link("b2", s, latency=link_latency)
    for s in ("s3", "s4", "s5"):
        topo.link("b3", s, latency=link_latency)
        topo.link("b4", s, latency=link_latency)
    names = (
        list(pubend_names)
        if pubend_names is not None
        else [f"P{k}" for k in range(n_pubends)]
    )
    for name in names:
        topo.pubend(
            name, "p1",
            preassign_window=(preassign or {}).get(name),
        )
    topo.route_all("PHB", "IB1")
    topo.route_all("PHB", "IB2")
    for s in ("SHB1", "SHB2"):
        topo.route_all("IB1", s)
    for s in ("SHB3", "SHB4", "SHB5"):
        topo.route_all("IB2", s)
    return topo
