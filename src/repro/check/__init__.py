"""``repro.check`` — the deterministic fuzzer and the conformance harness.

Seeded scenario generation (:mod:`~repro.check.scenario`), the
exactly-once oracle suite (:mod:`~repro.check.oracles`), the execution
harness and fuzz loop (:mod:`~repro.check.runner`), the repro shrinker
(:mod:`~repro.check.shrink`), and the differential sim↔asyncio
conformance harness (:mod:`~repro.check.conformance`).  See
``docs/FUZZING.md`` for the seed/repro formats and the corpus check-in
workflow, and ``docs/TESTING.md`` for how the tiers fit together.
"""

from .conformance import (
    CONFORM_FORMAT,
    ConformanceResult,
    ConformReport,
    StackOutcome,
    conform,
    load_conformance_repro,
    replay_conformance,
    run_conformance,
    write_conformance_repro,
)
from .oracles import ORACLES, OracleFailure, OracleSuite
from .runner import (
    FuzzReport,
    RunResult,
    fuzz,
    load_repro,
    run_scenario,
    run_seed,
    write_repro,
)
from .scenario import (
    FORMAT,
    FaultSpec,
    PublisherSpec,
    Scenario,
    SubscriberSpec,
    TopologyMeta,
    build_topology,
    generate,
    scenario_seed,
)
from .shrink import ShrinkStats, shrink

__all__ = [
    "ORACLES",
    "OracleFailure",
    "OracleSuite",
    "FuzzReport",
    "RunResult",
    "fuzz",
    "load_repro",
    "run_scenario",
    "run_seed",
    "write_repro",
    "FORMAT",
    "FaultSpec",
    "PublisherSpec",
    "Scenario",
    "SubscriberSpec",
    "TopologyMeta",
    "build_topology",
    "generate",
    "scenario_seed",
    "ShrinkStats",
    "shrink",
    "CONFORM_FORMAT",
    "ConformanceResult",
    "ConformReport",
    "StackOutcome",
    "conform",
    "load_conformance_repro",
    "replay_conformance",
    "run_conformance",
    "write_conformance_repro",
]
