"""``repro.check`` — the deterministic fault-schedule fuzzer.

Seeded scenario generation (:mod:`~repro.check.scenario`), the
exactly-once oracle suite (:mod:`~repro.check.oracles`), the execution
harness and fuzz loop (:mod:`~repro.check.runner`), and the repro
shrinker (:mod:`~repro.check.shrink`).  See ``docs/FUZZING.md`` for the
seed/repro formats and the corpus check-in workflow.
"""

from .oracles import ORACLES, OracleFailure, OracleSuite
from .runner import (
    FuzzReport,
    RunResult,
    fuzz,
    load_repro,
    run_scenario,
    run_seed,
    write_repro,
)
from .scenario import (
    FORMAT,
    FaultSpec,
    PublisherSpec,
    Scenario,
    SubscriberSpec,
    TopologyMeta,
    build_topology,
    generate,
    scenario_seed,
)
from .shrink import ShrinkStats, shrink

__all__ = [
    "ORACLES",
    "OracleFailure",
    "OracleSuite",
    "FuzzReport",
    "RunResult",
    "fuzz",
    "load_repro",
    "run_scenario",
    "run_seed",
    "write_repro",
    "FORMAT",
    "FaultSpec",
    "PublisherSpec",
    "Scenario",
    "SubscriberSpec",
    "TopologyMeta",
    "build_topology",
    "generate",
    "scenario_seed",
    "ShrinkStats",
    "shrink",
]
