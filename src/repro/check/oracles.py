"""The exactly-once oracle suite: continuous and final correctness checks.

An :class:`OracleSuite` attaches to a built :class:`~repro.topology.System`
and watches the paper's service specification from *inside* the run, not
just at the end:

* **Delivery safety** — duplicate and out-of-order deliveries raise
  immediately inside :class:`~repro.client.SubscriberClient`; the suite
  converts those into structured failures.
* **Knowledge-lattice monotonicity** — within one broker incarnation,
  every istream/ostream doubt horizon, final prefix and acked prefix only
  moves forward (knowledge accumulates up the lattice; a regression means
  soft state was corrupted, not merely lost).  Swept periodically via
  :meth:`~repro.broker.engine.GDBrokerEngine.stream_state`.
* **Subend doubt-horizon monotonicity** — the publisher-order delivery
  horizon never rewinds (hooked via
  :attr:`~repro.core.subend.SubendManager.on_horizon_advance`).
* **Log-truncation safety** — a pubend may only truncate ticks no
  subscriber still needs: every *published* tick below the truncation
  point whose payload matches a subscription must already have reached
  that subscriber's client (hooked via
  :attr:`~repro.core.pubend.Pubend.on_truncate`, re-armed after PHB
  restarts, and re-checked on every sweep as a backstop).  Acking and
  truncating pure silence or filtered-out data ahead of the subend acks
  is legitimate (the F ↔ A linkage makes filtered knowledge immediately
  ackable per path), so the oracle judges against the ground-truth
  publication record, not the subend watermarks.
* **Stream-state invariants** — :meth:`System.check_invariants` (coalesced
  runs, payload/D linkage, no fabricated D ticks) on every sweep.
* **Final verdict** — after the quiescent drain: exactly-once and gapless
  delivery per subscriber against the ground-truth publication record,
  and total-order consistency (identical delivered sequences) for every
  total-order merge group.

Failures are :class:`OracleFailure` (an ``AssertionError`` subclass so a
raising oracle aborts the simulated run the way the online client checks
do), each tagged with the oracle name for triage and shrinking.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..client import DeliveryChecker, PublisherClient, SubscriberClient
from ..core.ticks import Tick
from ..topology import System

__all__ = ["OracleFailure", "OracleSuite", "ORACLES"]

#: The oracle names a suite can report (documented in docs/FUZZING.md).
ORACLES = (
    "delivery-safety",
    "knowledge-monotonic",
    "subend-horizon-monotonic",
    "truncation-safety",
    "stream-invariants",
    "exactly-once",
    "total-order",
)


class OracleFailure(AssertionError):
    """One violated oracle, tagged for triage.

    ``subject`` is the violating publication identity ``(pubend, tick)``
    when the oracle can name one — the hook causal tracers use to dump
    the offending message's span timeline next to a shrunk repro.
    """

    def __init__(
        self,
        oracle: str,
        message: str,
        subject: Optional[Tuple[str, Tick]] = None,
    ):
        super().__init__(f"[{oracle}] {message}")
        self.oracle = oracle
        self.message = message
        self.subject = subject


class OracleSuite:
    """Continuous + final correctness checks over one simulated system."""

    def __init__(
        self,
        system: System,
        publishers: Sequence[PublisherClient] = (),
        check_interval: float = 0.25,
    ):
        self.system = system
        #: Ground truth for the truncation and final checks; defaults to
        #: every publisher attached to the system.
        self.publishers = list(publishers)
        self.check_interval = check_interval
        self.sweeps = 0
        #: (broker, epoch, pubend, stream-key, field) -> watermark.
        self._marks: Dict[Tuple[Any, ...], float] = {}
        #: id(SubendManager) -> {pubend: last horizon}.
        self._sub_horizons: Dict[int, Dict[str, Tick]] = {}
        #: (pubend, subscriber) -> published-list index already verified
        #: safe by the truncation oracle (ticks are recorded in publish
        #: order, so a prefix index is a watermark).
        self._trunc_checked: Dict[Tuple[str, str], int] = {}
        self._installed = False

    def _ground_truth(self) -> Sequence[PublisherClient]:
        return self.publishers if self.publishers else self.system.publishers

    # ------------------------------------------------------------------
    # Installation
    # ------------------------------------------------------------------

    def install(self) -> None:
        """Arm the oracle hooks and the periodic sweep (idempotent)."""
        if self._installed:
            return
        self._installed = True
        self._arm_hooks()
        self._schedule_sweep()

    def _schedule_sweep(self) -> None:
        def tick() -> None:
            self.sweep()
            self.system.scheduler.call_later(self.check_interval, tick)

        self.system.scheduler.call_later(self.check_interval, tick)

    def _arm_hooks(self) -> None:
        """(Re-)hook live pubends and subends.

        Broker restarts rebuild Pubend and SubendManager objects, so the
        sweep calls this every period; hooking is identity-guarded and
        cheap.  The sweep-level state checks double as a backstop for the
        short window between a restart and the next sweep.
        """
        for broker in self.system.brokers.values():
            engine = getattr(broker, "engine", None)
            if not broker.alive or engine is None:
                continue
            for pubend in getattr(engine, "pubends", {}).values():
                if pubend.on_truncate is None:
                    pubend.on_truncate = self._on_truncate
            subend = getattr(engine, "subend", None)
            if subend is not None and subend.on_horizon_advance is None:
                subend.on_horizon_advance = self._make_horizon_hook(subend)

    # ------------------------------------------------------------------
    # Hook targets
    # ------------------------------------------------------------------

    def _on_truncate(self, pubend_id: str, up_to: Tick) -> None:
        """The PHB is about to drop ``[0, up_to)`` from stable storage:
        no subscriber may still need any of it."""
        self._check_truncation(pubend_id, up_to, origin="hook")

    def _check_truncation(self, pubend_id: str, up_to: Tick, origin: str) -> None:
        """Every published tick below ``up_to`` that matches a
        subscription must already be at the subscriber's client — once
        the log entry is gone, no retransmission can ever satisfy a nack
        for it.  (Silence and filtered-out data ack ahead of the subends;
        only *matching published data* is protected.)"""
        for publisher in self._ground_truth():
            if publisher.pubend != pubend_id:
                continue
            for broker in self.system.brokers.values():
                engine = getattr(broker, "engine", None)
                if not broker.alive or engine is None:
                    continue
                subend = getattr(engine, "subend", None)
                if subend is None or not subend.has_pubend(pubend_id):
                    continue
                for subscription in subend.subscriptions_for(pubend_id):
                    client = self.system.subscribers.get(subscription.subscriber)
                    if client is None:
                        continue
                    key = (id(publisher), subscription.subscriber)
                    start = self._trunc_checked.get(key, 0)
                    index = start
                    for __, tick, event in publisher.published[start:]:
                        if tick >= up_to:
                            break
                        index += 1
                        if not subscription.predicate(event):
                            continue
                        if (pubend_id, tick) in client._seen:
                            continue
                        # The subend acks once the message is queued on
                        # the client connection; under CPU backlog (e.g.
                        # a total-order window releasing hundreds of
                        # ticks at once) the write can still be in
                        # flight when the PHB truncates.  That is safe:
                        # only an SHB crash voids the write, and that
                        # voids the subscription itself.
                        if broker.client_write_inflight(
                            subscription.subscriber, pubend_id, tick
                        ):
                            continue
                        raise OracleFailure(
                                "truncation-safety",
                                f"pubend {pubend_id} truncating to {up_to} "
                                f"but matching tick {tick} never reached "
                                f"{subscription.subscriber} at "
                                f"{broker.node_id} ({origin}, "
                                f"t={self.system.scheduler.now:.3f})",
                                subject=(pubend_id, tick),
                            )
                    self._trunc_checked[key] = index

    def _make_horizon_hook(self, subend: Any):
        horizons = self._sub_horizons.setdefault(id(subend), {})

        def hook(pubend: str, old: Tick, new: Tick) -> None:
            last = horizons.get(pubend, 0)
            if new < last or old > new:
                raise OracleFailure(
                    "subend-horizon-monotonic",
                    f"delivery horizon of {pubend} rewound: "
                    f"{last} -> {new} (old={old})",
                )
            horizons[pubend] = new

        return hook

    # ------------------------------------------------------------------
    # Periodic sweep
    # ------------------------------------------------------------------

    def sweep(self) -> None:
        """One continuous-oracle pass over every live broker."""
        self.sweeps += 1
        self._arm_hooks()
        try:
            self.system.check_invariants()
        except OracleFailure:
            raise
        except AssertionError as exc:
            raise OracleFailure("stream-invariants", str(exc)) from exc
        for broker in self.system.brokers.values():
            engine = getattr(broker, "engine", None)
            if not broker.alive or engine is None:
                continue
            if not hasattr(engine, "stream_state"):
                continue
            incarnation = (broker.node_id, getattr(broker, "epoch", 0))
            state = engine.stream_state()
            for pubend, entry in state.items():
                self._monotone(
                    incarnation, pubend, "istream", entry["istream"],
                    ("doubt_horizon", "final_prefix", "horizon", "acked_upstream"),
                )
                for cell, ost in entry["ostreams"].items():
                    self._monotone(
                        incarnation, pubend, f"ostream:{cell}", ost,
                        ("doubt_horizon", "final_prefix", "ack_prefix"),
                    )
                if entry["subend"] is not None:
                    self._monotone(
                        incarnation, pubend, "subend", entry["subend"],
                        ("delivered_horizon", "acked_up_to"),
                    )
                if entry["pubend"] is not None:
                    self._monotone(
                        incarnation, pubend, "pubend", entry["pubend"],
                        ("acked_up_to", "horizon"),
                    )
                    # Sweep-level backstop of the truncation hook.
                    self._check_truncation(
                        pubend, entry["pubend"]["acked_up_to"], origin="sweep"
                    )

    def _monotone(
        self,
        incarnation: Tuple[str, int],
        pubend: str,
        stream: str,
        values: Dict[str, Any],
        fields: Sequence[str],
    ) -> None:
        for field in fields:
            value = values[field]
            key = (incarnation, pubend, stream, field)
            last = self._marks.get(key)
            if last is not None and value < last:
                raise OracleFailure(
                    "knowledge-monotonic",
                    f"{incarnation[0]} {stream}[{pubend}].{field} rewound "
                    f"{last} -> {value} at t={self.system.scheduler.now:.3f}",
                )
            self._marks[key] = value

    # ------------------------------------------------------------------
    # Final verdict
    # ------------------------------------------------------------------

    def final_check(
        self,
        publishers: Sequence[PublisherClient],
        subscribers: Optional[Dict[str, SubscriberClient]] = None,
    ) -> List[OracleFailure]:
        """The offline oracles, after the quiescent drain.

        Returns the (possibly empty) failure list instead of raising, so
        a caller can report *all* end-state violations at once.
        """
        failures: List[OracleFailure] = []
        subscribers = (
            subscribers if subscribers is not None else self.system.subscribers
        )
        checker = DeliveryChecker(list(publishers))
        for name, client in sorted(subscribers.items()):
            subscription = self.system.subscriptions.get(name)
            if subscription is None:
                continue
            report = checker.check(client, subscription)
            if not report.exactly_once:
                offenders = report.missing or report.unexpected
                failures.append(
                    OracleFailure(
                        "exactly-once",
                        f"{name}: {len(report.missing)} missing "
                        f"{report.missing[:3]}, {len(report.unexpected)} "
                        f"unexpected {report.unexpected[:3]} "
                        f"({report.delivered}/{report.matching_published} "
                        f"delivered)",
                        subject=offenders[0] if offenders else None,
                    )
                )
        failures.extend(self._total_order_check(subscribers))
        return failures

    def _total_order_check(
        self, subscribers: Dict[str, SubscriberClient]
    ) -> List[OracleFailure]:
        groups: Dict[Tuple[str, ...], List[Tuple[str, List[Tuple[str, Tick]]]]] = {}
        for name, client in sorted(subscribers.items()):
            subscription = self.system.subscriptions.get(name)
            if subscription is None or not subscription.total_order:
                continue
            key = tuple(sorted(subscription.pubends))
            sequence = [(p, t) for (p, t, __, ___) in client.received]
            groups.setdefault(key, []).append((name, sequence))
        failures: List[OracleFailure] = []
        for key, members in groups.items():
            baseline_name, baseline = members[0]
            for name, sequence in members[1:]:
                if sequence != baseline:
                    divergence = next(
                        (
                            i
                            for i, (a, b) in enumerate(zip(baseline, sequence))
                            if a != b
                        ),
                        min(len(baseline), len(sequence)),
                    )
                    failures.append(
                        OracleFailure(
                            "total-order",
                            f"{name} diverges from {baseline_name} on merge "
                            f"{key} at position {divergence} "
                            f"(lengths {len(sequence)} vs {len(baseline)})",
                        )
                    )
        return failures
