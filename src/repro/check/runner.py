"""Execute scenarios under the oracle suite: the fuzz loop and replay.

:func:`run_scenario` realizes one :class:`~repro.check.scenario.Scenario`
as a simulated system, arms the :class:`~repro.check.oracles.OracleSuite`,
schedules the fault script through :class:`~repro.faults.injector.FaultInjector`,
runs publish + quiescent drain, and reports a :class:`RunResult` whose
``digest`` is a stable fingerprint of everything observable (per-subscriber
delivery sequences, publication counts, verdicts) — two runs of the same
scenario must produce byte-identical digests, which is what the
determinism tests and the CLI's ``--verify-deterministic`` flag check.

:func:`fuzz` is the loop: derive per-run seeds from a base seed
(:func:`~repro.check.scenario.scenario_seed`), generate + run each
scenario, and on the first oracle failure optionally hand the scenario to
:func:`~repro.check.shrink.shrink` and write the minimized schedule as a
JSON repro file (the corpus check-in unit; see docs/FUZZING.md).

Fuzz-side telemetry rides the same observability plane as the protocol:
each run's ``system.obs`` gains ``repro_fuzz_oracle_failures_total``
(labelled by oracle) next to ``repro_faults_injected_total``.
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..client import DuplicateDelivery, OrderViolation
from ..faults.injector import FaultInjector
from ..topology import System
from .oracles import OracleFailure, OracleSuite
from .scenario import FaultSpec, Scenario, build_topology, generate, scenario_seed

__all__ = [
    "RunResult",
    "FuzzReport",
    "run_scenario",
    "run_seed",
    "fuzz",
    "write_repro",
    "load_repro",
]


@dataclass
class RunResult:
    """The verdict of one scenario run."""

    scenario: Scenario
    failures: List[str] = field(default_factory=list)
    oracles_failed: List[str] = field(default_factory=list)
    #: Violating publication identities ``(pubend, tick)``, when the
    #: failing oracles could name them.
    subjects: List[Tuple[str, int]] = field(default_factory=list)
    published: int = 0
    delivered: int = 0
    sweeps: int = 0
    sim_time: float = 0.0
    fault_log: List[str] = field(default_factory=list)
    digest: str = ""
    #: The run's :class:`~repro.obs.causal.CausalTracer` when the caller
    #: asked for one (``run_scenario(..., causal=True)``), else None.
    causal: Any = None
    #: Rendered causal span timeline of the first subject (with the
    #: failure message as header) — the artifact the fuzzer writes next
    #: to a shrunk repro file.
    causal_timeline: str = ""

    @property
    def ok(self) -> bool:
        return not self.failures

    def summary(self) -> str:
        verdict = "ok" if self.ok else f"FAIL {sorted(set(self.oracles_failed))}"
        return (
            f"seed={self.scenario.seed} {self.scenario.topology} "
            f"faults={len(self.scenario.faults)} pub={self.published} "
            f"dlv={self.delivered} {verdict}"
        )


def _schedule_fault(injector: FaultInjector, fault: FaultSpec) -> None:
    """Translate one declarative :class:`FaultSpec` into injector calls."""
    kind, target = fault.kind, fault.target
    if kind == "crash":
        broker = target[0]
        injector.at(fault.at, lambda: injector.crash_broker(broker))
        injector.at(
            fault.at + fault.duration, lambda: injector.restart_broker(broker)
        )
    elif kind == "stall_crash":
        injector.stall_then_crash_broker(
            target[0], at=fault.at, stall=fault.stall, downtime=fault.duration
        )
    elif kind == "stall_restart":
        # Stall with no intervening crash; the restart must clear the
        # sickness (the FaultInjector regression this suite guards).
        broker = target[0]
        injector.at(fault.at, lambda: injector.stall_broker(broker))
        injector.at(
            fault.at + fault.duration, lambda: injector.restart_broker(broker)
        )
    elif kind == "link_fail":
        a, b = target
        injector.at(fault.at, lambda: injector.fail_link(a, b))
        injector.at(
            fault.at + fault.duration, lambda: injector.recover_link(a, b)
        )
    elif kind == "stall_link_fail":
        a, b = target
        injector.stall_then_fail_link(
            a, b, at=fault.at, stall=fault.stall, outage=fault.duration
        )
    elif kind == "drop_burst":
        a, b = target
        injector.drop_burst(
            a, b, at=fault.at, duration=fault.duration,
            probability=fault.intensity,
        )
    elif kind == "reorder_burst":
        a, b = target
        injector.reorder_burst(
            a, b, at=fault.at, duration=fault.duration, jitter=fault.intensity
        )
    elif kind == "corrupt_burst":
        # In the simulator a corrupted message has no byte encoding to
        # damage; its observable effect is detect-and-discard at the
        # receiver, which is exactly a drop.  The aio leg corrupts for
        # real and counts the checksum rejects.
        a, b = target
        injector.drop_burst(
            a, b, at=fault.at, duration=fault.duration,
            probability=fault.intensity,
        )
    else:
        raise ValueError(f"unknown fault kind {kind!r}")


def _digest(system: System, failures: List[str]) -> str:
    """A stable fingerprint of everything externally observable."""
    obj: Dict[str, Any] = {
        "published": {
            p.pubend: [tick for (__, tick, ___) in p.published]
            for p in system.publishers
        },
        "delivered": {
            name: [(p, t) for (p, t, __, ___) in client.received]
            for name, client in sorted(system.subscribers.items())
        },
        "failures": failures,
    }
    text = json.dumps(obj, sort_keys=True)
    return hashlib.sha256(text.encode()).hexdigest()


def run_scenario(scenario: Scenario, causal: bool = False) -> RunResult:
    """Build, fault, run and judge one scenario (deterministic).

    With ``causal=True`` a :class:`~repro.obs.causal.CausalTracer` rides
    along (pure observation — the digest is unchanged) and the result
    carries the span timeline of the first oracle-failure subject.
    """
    meta = build_topology(scenario)
    system = meta.topo.build(seed=scenario.seed, params=scenario.params())
    tracer = None
    if causal:
        from ..obs.causal import CausalTracer

        tracer = CausalTracer(system).install()
    if scenario.drop_probability or scenario.jitter:
        for a, b in meta.links:
            link = system.network.link(a, b)
            link.drop_probability = scenario.drop_probability
            link.jitter = scenario.jitter

    for spec in scenario.subscribers:
        system.subscribe(
            spec.subscriber,
            spec.broker,
            spec.pubends,
            predicate=spec.predicate,
            total_order=spec.total_order,
        )
    publishers = []
    for i, spec in enumerate(scenario.publishers):
        publisher = system.publisher(
            spec.pubend,
            spec.rate,
            make_attributes=lambda seq, m=spec.modulus: {"g": seq % m},
        )
        publisher.start(at=0.05 + 0.01 * i)
        system.scheduler.call_at(scenario.publish_until, publisher.stop)
        publishers.append(publisher)

    suite = OracleSuite(system, publishers)
    suite.install()
    injector = FaultInjector(system)
    for fault in scenario.faults:
        _schedule_fault(injector, fault)

    result = RunResult(scenario=scenario)
    try:
        system.run_until(scenario.drain_until)
        for failure in suite.final_check(publishers):
            result.failures.append(str(failure))
            result.oracles_failed.append(failure.oracle)
            if failure.subject is not None:
                result.subjects.append(failure.subject)
    except OracleFailure as exc:
        result.failures.append(str(exc))
        result.oracles_failed.append(exc.oracle)
        if exc.subject is not None:
            result.subjects.append(exc.subject)
    except (DuplicateDelivery, OrderViolation) as exc:
        result.failures.append(f"[delivery-safety] {exc}")
        result.oracles_failed.append("delivery-safety")
    except AssertionError as exc:
        result.failures.append(f"[stream-invariants] {exc}")
        result.oracles_failed.append("stream-invariants")

    result.published = sum(len(p.published) for p in publishers)
    result.delivered = sum(c.count() for c in system.subscribers.values())
    result.sweeps = suite.sweeps
    result.sim_time = system.scheduler.now
    result.fault_log = list(injector.log)
    result.digest = _digest(system, result.failures)
    for oracle in result.oracles_failed:
        system.obs.counter(
            "repro_fuzz_oracle_failures_total",
            "Oracle violations observed by the fuzz harness, by oracle.",
            oracle=oracle,
        ).inc()
    if tracer is not None:
        result.causal = tracer
        if result.subjects:
            pubend, tick = result.subjects[0]
            result.causal_timeline = tracer.render_timeline(
                pubend, tick,
                header=result.failures[0] if result.failures else "",
            )
    return result


def run_seed(seed: int, flush_delay: Optional[float] = None) -> RunResult:
    """Generate and run the scenario for one fully-mixed seed.

    ``flush_delay`` overrides the generated scenario's batching knob —
    the whole campaign then runs with delta flushing forced on (or off),
    which is how CI proves batching preserves the oracles."""
    scenario = generate(seed)
    if flush_delay is not None:
        scenario = scenario.with_(flush_delay=flush_delay)
    return run_scenario(scenario)


@dataclass
class FuzzReport:
    """Aggregate outcome of one fuzz campaign."""

    base_seed: int
    runs: int = 0
    failures: List[RunResult] = field(default_factory=list)
    repro_paths: List[str] = field(default_factory=list)
    elapsed: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.failures


def fuzz(
    base_seed: int,
    runs: int,
    time_budget: Optional[float] = None,
    shrink_failures: bool = True,
    repro_dir: Optional[str] = None,
    progress: Optional[Callable[[str], None]] = None,
    stop_on_failure: bool = True,
    flush_delay: Optional[float] = None,
) -> FuzzReport:
    """Run ``runs`` generated scenarios (stopping early at ``time_budget``
    wall seconds); shrink and serialize the first failure found."""
    from .shrink import shrink  # local import: shrink imports this module

    report = FuzzReport(base_seed=base_seed)
    started = time.monotonic()
    say = progress if progress is not None else (lambda _line: None)
    for index in range(runs):
        if time_budget is not None and time.monotonic() - started > time_budget:
            say(f"time budget {time_budget:.0f}s exhausted after {index} runs")
            break
        seed = scenario_seed(base_seed, index)
        result = run_seed(seed, flush_delay=flush_delay)
        report.runs += 1
        say(f"[{index + 1}/{runs}] {result.summary()}")
        if result.ok:
            continue
        report.failures.append(result)
        if shrink_failures:
            say(f"shrinking seed={seed} ...")
            small, small_result = shrink(result.scenario, run_scenario)
            path = write_repro(
                small,
                small_result,
                directory=repro_dir,
                stem=f"fuzz-{base_seed}-{index}",
            )
            report.repro_paths.append(path)
            say(
                f"minimized to {len(small.faults)} fault(s); repro "
                f"written to {path}"
            )
            # Re-run the shrunk scenario under the causal tracer (pure
            # observation: same digest) and dump the violating message's
            # span timeline next to the repro for triage.
            causal_result = run_scenario(small, causal=True)
            if causal_result.causal_timeline:
                timeline_path = path[: -len(".json")] + ".timeline.txt"
                with open(timeline_path, "w") as handle:
                    handle.write(causal_result.causal_timeline)
                say(f"causal timeline of {causal_result.subjects[0]} "
                    f"written to {timeline_path}")
        if stop_on_failure:
            break
    report.elapsed = time.monotonic() - started
    return report


# ---------------------------------------------------------------------------
# Repro files (the corpus unit)
# ---------------------------------------------------------------------------


def write_repro(
    scenario: Scenario,
    result: Optional[RunResult] = None,
    directory: Optional[str] = None,
    stem: str = "repro",
) -> str:
    """Serialize one scenario (plus its verdict) as a corpus repro file."""
    import os

    obj: Dict[str, Any] = {
        "expect": "pass" if result is not None and result.ok else "fail",
        "scenario": scenario.to_dict(),
    }
    if result is not None:
        obj["oracles"] = sorted(set(result.oracles_failed))
        obj["failures"] = result.failures
    directory = directory if directory is not None else "."
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, f"{stem}.json")
    with open(path, "w") as handle:
        json.dump(obj, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def load_repro(path: str) -> Tuple[Scenario, str]:
    """Read a corpus repro file: (scenario, expected verdict)."""
    with open(path) as handle:
        obj = json.load(handle)
    scenario = Scenario.from_dict(obj["scenario"])
    expect = obj.get("expect", "pass")
    if expect not in ("pass", "fail"):
        raise ValueError(f"{path}: bad expect {expect!r}")
    return scenario, expect
