"""Seeded fuzz scenarios: topology + workload + fault schedule from one int.

A :class:`Scenario` is a *complete, declarative* description of one
adversarial end-to-end run: which topology to build (chains, trees, and
redundant-path networks over :class:`~repro.topology.Topology`), which
publishers and subscribers to attach, the ambient link pathology (drop
probability, jitter), and a schedule of :class:`FaultSpec` injections
(crash/restart, stall-then-crash, stall-then-restart, link outages,
drop and reorder bursts).

Two properties make scenarios useful as a fuzzing substrate:

* **Determinism** — :func:`generate` is a pure function of an integer
  seed, and a scenario replays bit-identically because everything
  downstream (the simulator, the link RNG, the workload) derives from
  ``scenario.seed``.  Same seed, same schedule, same verdicts.
* **Serializability** — scenarios round-trip through JSON
  (:meth:`Scenario.to_dict` / :meth:`Scenario.from_dict`), which is what
  lets the shrinker emit a minimized failing schedule as a repro file
  that ``tests/corpus/`` replays forever after.

The generator only produces *fair* schedules: every fault heals before
the quiescent drain begins, subscriber-hosting brokers are never crashed
(the paper's guarantee covers subscribers that stay connected), and every
crash is paired with a restart — so the paper's service specification
must hold, and any oracle failure is a protocol bug (or an intentional
ablation via :attr:`Scenario.disable_recovery`).
"""

from __future__ import annotations

import json
import random
from dataclasses import asdict, dataclass, field, replace
from typing import Any, Dict, List, Optional, Tuple

from ..core.config import INFINITY, LivenessParams
from ..topology import Topology, balanced_pubend_names, figure3_topology

__all__ = [
    "FaultSpec",
    "PublisherSpec",
    "SubscriberSpec",
    "Scenario",
    "TopologyMeta",
    "generate",
    "build_topology",
    "scenario_seed",
    "FORMAT",
]

#: Repro-file format tag (bump on incompatible schema changes).
FORMAT = "repro-fuzz/1"

#: Fast liveness parameters so faulted runs drain quickly (mirrors the
#: settings the hand-written property tests converged on).
FAST_PARAMS = LivenessParams(gct=0.1, nrt_min=0.3, aet=3.0, dct=INFINITY)

#: Subscription predicates the generator samples from (``None`` = all).
PREDICATE_POOL: Tuple[Optional[str], ...] = (None, None, "g = 0", "g > 0", "g = 1")


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault.

    ``target`` is ``(broker,)`` for broker faults and ``(a, b)`` for link
    faults.  ``duration`` is the outage/downtime/burst length, ``stall``
    the pre-failure sick window (paper section 4.2), and ``intensity``
    the burst drop probability or jitter.
    """

    kind: str
    target: Tuple[str, ...]
    at: float
    duration: float
    stall: float = 0.0
    intensity: float = 0.0

    #: When the fault has fully healed.
    @property
    def healed_at(self) -> float:
        return self.at + self.stall + self.duration

    def describe(self) -> str:
        return f"{self.kind}({'-'.join(self.target)}) @ {self.at:.2f}"


@dataclass(frozen=True)
class PublisherSpec:
    """A constant-rate publisher; events carry ``{"g": seq % modulus}``."""

    pubend: str
    rate: float
    modulus: int = 3


@dataclass(frozen=True)
class SubscriberSpec:
    subscriber: str
    broker: str
    pubends: Tuple[str, ...]
    predicate: Optional[str] = None
    total_order: bool = False


@dataclass(frozen=True)
class Scenario:
    """A complete, replayable adversarial run."""

    seed: int
    topology: str  # "two_broker" | "chain" | "figure3"
    pubends: Tuple[str, ...] = ()
    publishers: Tuple[PublisherSpec, ...] = ()
    subscribers: Tuple[SubscriberSpec, ...] = ()
    faults: Tuple[FaultSpec, ...] = ()
    #: Chain depth (intermediate cells) for ``topology == "chain"``.
    chain_cells: int = 1
    #: Two brokers per intermediate cell (redundant paths / link bundles).
    redundant: bool = False
    #: Ambient link pathology applied to every link for the whole run.
    drop_probability: float = 0.0
    jitter: float = 0.0
    #: Publishers stop at ``publish_until``; oracles give their final
    #: verdict after the quiescent drain at ``drain_until``.
    publish_until: float = 6.0
    drain_until: float = 26.0
    #: Intentional-break flag: disable every recovery path (GCT, DCT and
    #: AET all infinite) so lost messages stay lost.  Used to validate
    #: that the oracle suite actually catches liveness violations.
    disable_recovery: bool = False
    #: Batched knowledge propagation (LivenessParams.flush_delay): 0 is
    #: the immediate-send default; > 0 exercises delta flushing under the
    #: same oracles.  Older repro files without the field load as 0.
    flush_delay: float = 0.0
    note: str = ""

    # -- serialization ---------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        obj = asdict(self)
        obj["format"] = FORMAT
        obj["publishers"] = [asdict(p) for p in self.publishers]
        obj["subscribers"] = [asdict(s) for s in self.subscribers]
        obj["faults"] = [asdict(f) for f in self.faults]
        obj["pubends"] = list(self.pubends)
        return obj

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, obj: Dict[str, Any]) -> "Scenario":
        data = dict(obj)
        fmt = data.pop("format", FORMAT)
        if fmt != FORMAT:
            raise ValueError(f"unsupported scenario format {fmt!r}")
        data["pubends"] = tuple(data.get("pubends", ()))
        data["publishers"] = tuple(
            PublisherSpec(**p) for p in data.get("publishers", ())
        )
        data["subscribers"] = tuple(
            SubscriberSpec(
                **{**s, "pubends": tuple(s.get("pubends", ()))}
            )
            for s in data.get("subscribers", ())
        )
        data["faults"] = tuple(
            FaultSpec(**{**f, "target": tuple(f.get("target", ()))})
            for f in data.get("faults", ())
        )
        return cls(**data)

    @classmethod
    def from_json(cls, text: str) -> "Scenario":
        return cls.from_dict(json.loads(text))

    # -- derived ---------------------------------------------------------

    def params(self) -> LivenessParams:
        params = FAST_PARAMS
        if self.disable_recovery:
            params = replace(params, gct=INFINITY, dct=INFINITY, aet=INFINITY)
        if self.flush_delay > 0:
            params = replace(params, flush_delay=self.flush_delay)
        return params

    def with_(self, **changes: Any) -> "Scenario":
        return replace(self, **changes)


@dataclass
class TopologyMeta:
    """Side facts about a built scenario topology the generator and the
    fault scheduler need: which brokers may crash (no subscribers live
    there), where subscribers may attach, and the physical link list."""

    topo: Topology
    shb_brokers: List[str] = field(default_factory=list)
    crashable_brokers: List[str] = field(default_factory=list)
    links: List[Tuple[str, str]] = field(default_factory=list)


def build_topology(scenario: Scenario) -> TopologyMeta:
    """Realize the scenario's topology declaration (deterministically)."""
    if scenario.topology == "two_broker":
        topo = Topology()
        topo.cell("PHB", "phb")
        topo.cell("SHB", "shb")
        topo.link("phb", "shb", latency=0.002)
        for name in scenario.pubends:
            topo.pubend(name, "phb")
        topo.route_all("PHB", "SHB")
        return TopologyMeta(
            topo,
            shb_brokers=["shb"],
            crashable_brokers=["phb"],
            links=topo.physical_links(),
        )
    if scenario.topology == "chain":
        return _chain_topology(scenario)
    if scenario.topology == "figure3":
        topo = figure3_topology(
            n_pubends=len(scenario.pubends),
            pubend_names=list(scenario.pubends),
        )
        return TopologyMeta(
            topo,
            shb_brokers=[f"s{i}" for i in range(1, 6)],
            crashable_brokers=["p1", "b1", "b2", "b3", "b4"],
            links=topo.physical_links(),
        )
    raise ValueError(f"unknown scenario topology {scenario.topology!r}")


def _chain_topology(scenario: Scenario) -> TopologyMeta:
    """PHB -> N intermediate cells -> SHB; redundant cells have 2 brokers.

    With ``redundant=True`` every intermediate cell is a 2-broker link
    bundle, so the chain exercises sideways routing and bundle selection
    exactly like the paper's Figure 3 interior.
    """
    topo = Topology()
    meta = TopologyMeta(topo)
    topo.cell("PHB", "phb")
    cells: List[Tuple[str, List[str]]] = [("PHB", ["phb"])]
    for i in range(scenario.chain_cells):
        if scenario.redundant:
            brokers = [f"m{i}a", f"m{i}b"]
        else:
            brokers = [f"m{i}"]
        topo.cell(f"MID{i}", *brokers)
        cells.append((f"MID{i}", brokers))
    topo.cell("SHB", "shb")
    cells.append(("SHB", ["shb"]))
    for (__, upstream), (___, downstream) in zip(cells, cells[1:]):
        for a in upstream:
            for b in downstream:
                topo.link(a, b, latency=0.002)
        if len(downstream) == 2:
            topo.link(downstream[0], downstream[1], latency=0.001)
    meta.links = topo.physical_links()
    for name in scenario.pubends:
        topo.pubend(name, "phb")
    for (parent, __), (child, ___) in zip(cells, cells[1:]):
        topo.route_all(parent, child)
    meta.shb_brokers = ["shb"]
    meta.crashable_brokers = ["phb"] + [
        b for __, brokers in cells[1:-1] for b in brokers
    ]
    return meta


# ---------------------------------------------------------------------------
# Seeded generation
# ---------------------------------------------------------------------------

#: Knuth-style multiplicative mix so base seeds and run indexes never
#: produce overlapping scenario streams.
def scenario_seed(base: int, index: int) -> int:
    return (base * 2654435761 + index * 40503 + 12345) % (2**31)


def generate(seed: int) -> Scenario:
    """The scenario for ``seed`` — a pure, deterministic function."""
    rng = random.Random(seed)
    topology = rng.choice(("two_broker", "chain", "chain", "figure3"))
    chain_cells = rng.randint(1, 2) if topology == "chain" else 1
    redundant = rng.random() < 0.5 if topology == "chain" else False

    n_pubends = rng.randint(1, 2)
    if topology == "figure3" or redundant:
        # Balanced names split evenly over 2-wide link bundles.
        pubends = tuple(balanced_pubend_names(max(n_pubends, 2)))
    else:
        pubends = tuple(f"P{k}" for k in range(n_pubends))

    publishers = tuple(
        PublisherSpec(
            pubend=name,
            rate=round(rng.uniform(15.0, 35.0), 1),
            modulus=rng.randint(2, 4),
        )
        for name in pubends
    )

    publish_until = round(rng.uniform(5.0, 7.0), 2)
    drain_until = publish_until + 20.0

    base = Scenario(
        seed=seed,
        topology=topology,
        pubends=pubends,
        publishers=publishers,
        chain_cells=chain_cells,
        redundant=redundant,
        publish_until=publish_until,
        drain_until=drain_until,
    )
    meta = build_topology(base)

    subscribers: List[SubscriberSpec] = []
    n_subs = rng.randint(1, min(3, len(meta.shb_brokers) + 1))
    total_order_run = rng.random() < 0.25
    for i in range(n_subs):
        broker = rng.choice(meta.shb_brokers)
        if total_order_run:
            # Total-order subscribers share the merge and match everything
            # so their delivered sequences must be identical after drain.
            subscribers.append(
                SubscriberSpec(
                    subscriber=f"c{i}", broker=broker, pubends=pubends,
                    predicate=None, total_order=True,
                )
            )
        else:
            subscribers.append(
                SubscriberSpec(
                    subscriber=f"c{i}", broker=broker, pubends=pubends,
                    predicate=rng.choice(PREDICATE_POOL), total_order=False,
                )
            )

    faults = tuple(_generate_faults(rng, meta, publish_until))
    drop = round(rng.uniform(0.0, 0.08), 3) if rng.random() < 0.6 else 0.0
    jitter = round(rng.uniform(0.0, 0.02), 4) if rng.random() < 0.4 else 0.0
    # Drawn last so pre-existing seeds keep their fault schedules intact.
    flush_delay = (
        round(rng.uniform(0.01, 0.08), 3) if rng.random() < 0.25 else 0.0
    )

    return base.with_(
        subscribers=tuple(subscribers),
        faults=faults,
        drop_probability=drop,
        jitter=jitter,
        flush_delay=flush_delay,
    )


def _generate_faults(
    rng: random.Random, meta: TopologyMeta, publish_until: float
) -> List[FaultSpec]:
    kinds = (
        "crash",
        "stall_crash",
        "stall_restart",
        "link_fail",
        "stall_link_fail",
        "drop_burst",
        "reorder_burst",
        # Wire corruption on one link: the receiving transport detects
        # each damaged message by checksum and discards it, so at the
        # protocol level a corrupt burst IS a drop burst (detect-and-
        # discard) — the sim leg models it as loss, the aio leg counts
        # checksum rejects.  Adding the kind reshuffles freshly generated
        # schedules; persisted corpus scenarios carry explicit faults and
        # are unaffected.
        "corrupt_burst",
    )
    faults: List[FaultSpec] = []
    heal_deadline = publish_until + 3.0
    for __ in range(rng.randint(0, 5)):
        kind = rng.choice(kinds)
        at = round(rng.uniform(0.8, publish_until - 0.5), 2)
        duration = round(rng.uniform(0.3, 2.5), 2)
        stall = (
            round(rng.uniform(0.2, 1.2), 2)
            if kind in ("stall_crash", "stall_link_fail")
            else 0.0
        )
        if kind in ("crash", "stall_crash", "stall_restart"):
            target: Tuple[str, ...] = (rng.choice(meta.crashable_brokers),)
            intensity = 0.0
        else:
            target = rng.choice(meta.links)
            intensity = {
                "drop_burst": round(rng.uniform(0.2, 0.6), 2),
                "reorder_burst": round(rng.uniform(0.01, 0.05), 3),
                "corrupt_burst": round(rng.uniform(0.2, 0.6), 2),
            }.get(kind, 0.0)
        fault = FaultSpec(
            kind=kind, target=target, at=at, duration=duration,
            stall=stall, intensity=intensity,
        )
        if fault.healed_at <= heal_deadline:
            faults.append(fault)
    return sorted(faults, key=lambda f: (f.at, f.kind, f.target))
