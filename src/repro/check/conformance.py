"""Differential sim↔asyncio conformance: one scenario, two backends.

The simulator (:class:`~repro.topology.System`) is the evaluation
substrate the oracles were proven against; the asyncio runtime
(:class:`~repro.aio.runtime.AioSystem`) is the production backend.  Both
host the same :class:`~repro.broker.engine.GDBrokerEngine` behind the
:class:`~repro.facade.SystemFacade` protocol — but nothing guarantees
they stay semantically interchangeable unless something *executes the
same adversarial scenario on both and cross-checks the outcomes*.  That
is this module.

:func:`run_conformance` takes one seeded
:class:`~repro.check.scenario.Scenario` (the PR-3 generator's unit:
topology + workload + fault schedule) and

1. runs it on the simulator exactly like the fuzzer
   (:func:`~repro.check.runner.run_scenario` semantics: oracle suite,
   :class:`~repro.faults.injector.FaultInjector` fault script), except
   publishers are *count-limited* — each makes a fixed number of publish
   attempts derived from the scenario, so any backend attempts the
   identical seq sequence;
2. runs it on the asyncio runtime in scaled wall-clock time
   (``time_scale`` wall seconds per sim second), mapping the declarative
   fault schedule onto the chaos-style actions the runtime understands
   (``kill_broker``/``restart_broker`` for crash kinds,
   ``sever_link``/``heal_link`` for outages, timed per-pair
   drop/jitter pathologies on :class:`~repro.aio.transport.LocalTransport`
   for bursts), then polls for convergence instead of racing a fixed
   drain window;
3. cross-checks the two :class:`StackOutcome` records.

**The comparison relation.**  Publication identity across backends is
``(pubend, seq)`` — ticks are backend-local.  The stacks may legitimately
disagree on *which attempts succeeded*: a publish attempted while the
PHB is down fails, and crash/restart edges land at slightly different
attempt indexes in wall-clock time.  So the harness tolerates exactly
that difference and nothing else:

* per stack, every subscriber's delivery set must equal the matching
  subset of *that stack's* published set (exactly-once against its own
  ground truth, plus the sim oracle suite's verdicts);
* cross-stack, the symmetric difference of the delivery sets must be
  contained in the matching projection of the symmetric difference of
  the published sets — any disagreement beyond publish-failure timing is
  a divergence;
* the lifecycle-event multisets (committed per publication, delivered
  per (subscriber, publication) — order-insensitive by construction,
  because the protocol permits reordering between these moments) must be
  phantom-free and duplicate-free against each stack's client-visible
  record, and deliveries must be exactly-once as *events*, not just as
  set members (commit events may *undercount* the publish record when a
  crash lands inside the log's commit-latency window — the append
  survives, the event callback does not);
* final knowledge must have converged on both stacks: at every live
  broker, each published pubend's istream doubt horizon must clear the
  highest tick that stack published (no residual doubt about guaranteed
  traffic after the drain).

Because subscription predicates are evaluated on reconstructed events
when computing the matching projection, conformance workloads must use
predicates over the deterministic attributes (``pub``, ``seq``, ``g``)
— which is all the scenario generator's predicate pool ever uses.

Divergences are shrunk with the greedy fuzz shrinker (it only needs
``result.ok``) and persisted as ``repro-conform/1`` repro files under
``tests/corpus/conformance/``; the ``python -m repro conform`` CLI runs
campaigns and replays repro files.  A deliberate-mutation self-test
(``mutations=("suppress-retransmit",)`` — see
:data:`repro.aio.runtime.KNOWN_MUTATIONS`) proves the harness detects a
runtime that drifts from the protocol.
"""

from __future__ import annotations

import asyncio
import json
import os
import time
from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from ..client import DeliveryChecker, DuplicateDelivery, OrderViolation
from ..core.config import INFINITY, LivenessParams
from ..facade import SystemFacade, resolve_predicate
from ..faults.injector import FaultInjector
from ..matching.events import Event
from ..obs.lifecycle import LifecycleRecorder
from .oracles import OracleFailure, OracleSuite
from .runner import _schedule_fault
from .scenario import Scenario, build_topology, generate, scenario_seed

__all__ = [
    "CONFORM_FORMAT",
    "DEFAULT_TIME_SCALE",
    "StackOutcome",
    "ConformanceResult",
    "ConformReport",
    "message_counts",
    "run_conformance",
    "conform",
    "write_conformance_repro",
    "load_conformance_repro",
    "replay_conformance",
]

#: Conformance repro-file format tag (bump on incompatible changes).
CONFORM_FORMAT = "repro-conform/1"

#: Wall-clock seconds per simulated second for the asyncio leg.  At 0.35
#: a 6 s publish window takes ~2 s of wall time while every liveness
#: interval stays an order of magnitude above timer granularity.
DEFAULT_TIME_SCALE = 0.35

#: Publisher start staggering, in sim seconds (mirrors the fuzz runner).
PUBLISHER_START_BASE = 0.05
PUBLISHER_START_STEP = 0.01

#: LivenessParams fields measured in seconds (scaled for the aio leg).
_TIME_FIELDS = (
    "gct",
    "nrt_min",
    "nrt_max",
    "dct",
    "aet",
    "aet_check_interval",
    "silence_interval",
    "link_status_interval",
    "subend_check_interval",
    "preassign_window",
    "flush_delay",
)


def publisher_start(index: int) -> float:
    return PUBLISHER_START_BASE + PUBLISHER_START_STEP * index


def message_counts(scenario: Scenario) -> Dict[str, int]:
    """Fixed publish-attempt counts per pubend, derived from the
    scenario's rates and publish window.  Both backends run each
    publisher for exactly this many attempts, so the attempted seq
    sequence is identical by construction."""
    counts: Dict[str, int] = {}
    for i, spec in enumerate(scenario.publishers):
        window = max(scenario.publish_until - publisher_start(i), 0.0)
        counts[spec.pubend] = max(1, int(spec.rate * window))
    return counts


def _scale_params(params: LivenessParams, scale: float) -> LivenessParams:
    changes: Dict[str, Any] = {}
    for name in _TIME_FIELDS:
        value = getattr(params, name)
        if value and value != INFINITY:
            changes[name] = value * scale
    return params.with_(**changes)


# ---------------------------------------------------------------------------
# Per-stack outcome records
# ---------------------------------------------------------------------------


@dataclass
class StackOutcome:
    """Everything observable from one backend's run of a scenario, keyed
    by cross-stack publication identity ``(pubend, seq)``."""

    stack: str
    #: pubend -> successfully published seqs, in publish order.
    published: Dict[str, List[int]] = field(default_factory=dict)
    #: pubend -> publish attempts made (== the fixed count on success).
    attempts: Dict[str, int] = field(default_factory=dict)
    #: subscriber -> {(pubend, seq)} actually delivered to the client.
    delivered: Dict[str, Set[Tuple[str, int]]] = field(default_factory=dict)
    #: Stack-internal verdict failures (oracles, delivery safety, ...).
    failures: List[str] = field(default_factory=list)
    #: pubend -> True when every live broker's istream doubt horizon
    #: cleared this stack's highest published tick.
    converged: Dict[str, bool] = field(default_factory=dict)
    #: (pubend, seq) -> lifecycle commit events observed.
    committed: Counter = field(default_factory=Counter)
    #: (subscriber, pubend, seq) -> lifecycle delivery events observed.
    lifecycle_delivered: Counter = field(default_factory=Counter)
    retransmits_sent: int = 0
    #: mutation name -> times the deliberate defect fired (aio only).
    mutated: Counter = field(default_factory=Counter)
    elapsed: float = 0.0


def _collect_outcome(
    stack: str,
    scenario: Scenario,
    publishers: List[Any],
    system: Any,
    recorder: LifecycleRecorder,
    failures: List[str],
) -> StackOutcome:
    outcome = StackOutcome(stack=stack, failures=failures)
    tick_to_seq: Dict[str, Dict[int, int]] = {}
    for publisher in publishers:
        outcome.published[publisher.pubend] = [
            seq for (seq, __, ___) in publisher.published
        ]
        outcome.attempts[publisher.pubend] = publisher.seq
        tick_to_seq[publisher.pubend] = {
            tick: seq for (seq, tick, __) in publisher.published
        }
    for name, client in system.subscribers.items():
        pairs: Set[Tuple[str, int]] = set()
        for pubend, tick, payload, __ in client.received:
            seq = _seq_of(payload, tick_to_seq.get(pubend, {}), tick)
            pairs.add((pubend, seq))
        outcome.delivered[name] = pairs
    for (pubend, tick), n in recorder.committed_events.items():
        seqmap = tick_to_seq.get(pubend)
        if seqmap is not None and tick in seqmap:
            outcome.committed[(pubend, seqmap[tick])] += n
    for (sub, pubend, tick), n in recorder.delivered_events.items():
        seqmap = tick_to_seq.get(pubend)
        if seqmap is not None and tick in seqmap:
            outcome.lifecycle_delivered[(sub, pubend, seqmap[tick])] += n
    outcome.retransmits_sent = recorder.retransmits_sent
    outcome.converged = _knowledge_convergence(system.brokers, publishers)
    return outcome


def _seq_of(payload: Any, seqmap: Dict[int, int], tick: int) -> int:
    if isinstance(payload, Event):
        seq = payload.get_attr("seq")
        if seq is not None:
            return int(seq)
    return seqmap.get(tick, -1)


def _knowledge_convergence(
    brokers: Dict[str, Any], publishers: List[Any]
) -> Dict[str, bool]:
    """Per pubend: did every *subend-hosting* broker's istream resolve
    all doubt at or below the highest tick this stack published?

    The check is scoped to brokers that host a subend for the pubend —
    the delivery path the paper's guarantee covers.  Brokers off the
    pubend's route (the other branch of a slot-partitioned bundle, or a
    broker holding only sideways-relay fragments) legitimately keep
    partial istreams forever: nobody downstream of them is curious."""
    top: Dict[str, int] = {}
    for publisher in publishers:
        if publisher.published:
            top[publisher.pubend] = max(t for (__, t, ___) in publisher.published)
    converged = {publisher.pubend: True for publisher in publishers}
    for broker in brokers.values():
        engine = getattr(broker, "engine", None)
        if not getattr(broker, "alive", False) or engine is None:
            continue
        if not hasattr(engine, "stream_state"):
            continue
        for pubend, state in engine.stream_state().items():
            if pubend not in top or state.get("subend") is None:
                continue
            if state["istream"]["doubt_horizon"] <= top[pubend]:
                converged[pubend] = False
    return converged


# ---------------------------------------------------------------------------
# The simulator leg
# ---------------------------------------------------------------------------


def _run_sim_stack(scenario: Scenario, counts: Dict[str, int]) -> StackOutcome:
    meta = build_topology(scenario)
    system = meta.topo.build(seed=scenario.seed, params=scenario.params())
    assert isinstance(system, SystemFacade)
    recorder = LifecycleRecorder()
    system.obs.lifecycle.attach(recorder)
    if scenario.drop_probability or scenario.jitter:
        for a, b in meta.links:
            link = system.network.link(a, b)
            link.drop_probability = scenario.drop_probability
            link.jitter = scenario.jitter

    for spec in scenario.subscribers:
        system.subscribe(
            spec.subscriber,
            spec.broker,
            spec.pubends,
            predicate=spec.predicate,
            total_order=spec.total_order,
        )
    publishers = []
    for i, spec in enumerate(scenario.publishers):
        publisher = system.publisher(
            spec.pubend,
            spec.rate,
            make_attributes=lambda seq, m=spec.modulus: {"g": seq % m},
            max_messages=counts[spec.pubend],
        )
        publisher.start(at=publisher_start(i))
        publishers.append(publisher)

    suite = OracleSuite(system, publishers)
    suite.install()
    injector = FaultInjector(system)
    for fault in scenario.faults:
        _schedule_fault(injector, fault)

    failures: List[str] = []
    try:
        system.run_until(scenario.drain_until)
        for failure in suite.final_check(publishers):
            failures.append(str(failure))
    except OracleFailure as exc:
        failures.append(str(exc))
    except (DuplicateDelivery, OrderViolation) as exc:
        failures.append(f"[delivery-safety] {exc}")
    except AssertionError as exc:
        failures.append(f"[stream-invariants] {exc}")
    return _collect_outcome("sim", scenario, publishers, system, recorder, failures)


# ---------------------------------------------------------------------------
# The asyncio leg
# ---------------------------------------------------------------------------


def _aio_fault_actions(
    scenario: Scenario, scale: float
) -> List[Tuple[float, str, Any]]:
    """Map the declarative fault schedule onto chaos-style wall-clock
    actions.  Broker stalls have no asyncio analogue (a stalled sim
    broker is sick-but-alive), so stall kinds conservatively take the
    broker/link down for the whole stall + outage window — publish
    failures this causes fall inside the tolerated published-set
    difference."""
    actions: List[Tuple[float, str, Any]] = []
    for fault in scenario.faults:
        start = fault.at * scale
        healed = fault.healed_at * scale
        if fault.kind in ("crash", "stall_crash", "stall_restart"):
            broker = fault.target[0]
            actions.append((start, "kill", broker))
            actions.append((healed, "restart", broker))
        elif fault.kind in ("link_fail", "stall_link_fail"):
            actions.append((start, "sever", tuple(fault.target)))
            actions.append((healed, "heal", tuple(fault.target)))
        elif fault.kind == "drop_burst":
            a, b = fault.target
            actions.append((start, "drop_on", (a, b, fault.intensity)))
            actions.append((healed, "path_off", (a, b)))
        elif fault.kind == "reorder_burst":
            a, b = fault.target
            actions.append((start, "jitter_on", (a, b, fault.intensity * scale)))
            actions.append((healed, "path_off", (a, b)))
        elif fault.kind == "corrupt_burst":
            # Messages corrupted in flight are rejected by checksum at
            # the receiver (detect-and-discard); the sim leg runs the
            # same schedule as a drop burst (see check/runner.py).
            a, b = fault.target
            actions.append((start, "corrupt_on", (a, b, fault.intensity)))
            actions.append((healed, "path_off", (a, b)))
        else:
            raise ValueError(f"unknown fault kind {fault.kind!r}")
    return actions


async def _run_aio_stack_async(
    scenario: Scenario,
    counts: Dict[str, int],
    time_scale: float,
    transport: str,
    data_dir: Optional[str],
    mutations: Tuple[str, ...],
    aio_flush_delay: Optional[float] = None,
    corrupt_rate: float = 0.0,
) -> StackOutcome:
    from ..aio.runtime import AioSystem
    from ..aio.transport import LocalTransport, TcpTransport

    meta = build_topology(scenario)
    params = _scale_params(scenario.params(), time_scale)
    if transport == "tcp":
        # aio_flush_delay overrides the transport's cork window — used by
        # CI to prove aggressive wire batching is invisible to the
        # conformance oracles.
        wire: Any = (
            TcpTransport(seed=scenario.seed)
            if aio_flush_delay is None
            else TcpTransport(seed=scenario.seed, flush_delay=aio_flush_delay)
        )
    else:
        wire = LocalTransport(
            latency=0.002 * time_scale,
            drop_probability=scenario.drop_probability,
            jitter=scenario.jitter * time_scale,
            seed=scenario.seed,
            # Ambient wire corruption (--corrupt-rate): every corrupted
            # message is rejected by checksum at the receiver, so the
            # protocol experiences it as extra loss it must heal; the
            # conformance oracles must stay clean regardless.
            corrupt_probability=corrupt_rate,
        )
    system = AioSystem(
        meta.topo,
        params=params,
        transport=wire,
        data_dir=data_dir,
        mutations=mutations,
    )
    assert isinstance(system, SystemFacade)
    recorder = LifecycleRecorder()
    system.obs.lifecycle.attach(recorder)
    failures: List[str] = []
    loop = asyncio.get_running_loop()
    try:
        await system.start()
        t0 = loop.time()
        for spec in scenario.subscribers:
            system.subscribe(
                spec.subscriber,
                spec.broker,
                spec.pubends,
                predicate=spec.predicate,
                total_order=spec.total_order,
            )
        publishers = []
        schedule: List[Tuple[float, str, Any]] = []
        for i, spec in enumerate(scenario.publishers):
            publisher = system.publisher(
                spec.pubend,
                rate=spec.rate / time_scale,
                make_attributes=lambda seq, m=spec.modulus: {"g": seq % m},
                max_messages=counts[spec.pubend],
            )
            publishers.append(publisher)
            schedule.append(
                (publisher_start(i) * time_scale, "start_pub", publisher)
            )
        if transport != "tcp":
            schedule.extend(_aio_fault_actions(scenario, time_scale))
        schedule.sort(key=lambda action: action[0])

        for offset, kind, payload in schedule:
            delay = t0 + offset - loop.time()
            if delay > 0:
                await asyncio.sleep(delay)
            if kind == "start_pub":
                payload.start()
            elif kind == "kill":
                await system.kill_broker(payload)
            elif kind == "restart":
                await system.restart_broker(payload)
            elif kind == "sever":
                system.sever_link(*payload)
            elif kind == "heal":
                system.heal_link(*payload)
            elif kind == "drop_on":
                wire.set_pathology(payload[0], payload[1],
                                   drop_probability=payload[2])
            elif kind == "jitter_on":
                wire.set_pathology(payload[0], payload[1], jitter=payload[2])
            elif kind == "corrupt_on":
                wire.set_pathology(
                    payload[0], payload[1], corrupt_probability=payload[2]
                )
            elif kind == "path_off":
                wire.clear_pathology(payload[0], payload[1])

        # Publishers stop themselves at their attempt count; give them
        # the publish window plus generous slack before calling it hung.
        publish_deadline = t0 + scenario.publish_until * time_scale + 10.0
        while not all(p.done for p in publishers):
            if loop.time() > publish_deadline:
                failures.append(
                    "[conformance-aio] publishers did not finish their "
                    "attempt budget in time"
                )
                break
            await asyncio.sleep(0.05)

        # Convergence polling: the sim drains to a fixed deadline because
        # its clock is free; real time is not, so poll for the settled
        # state (exactly-once against own ground truth + knowledge
        # converged everywhere) and only give up at a generous deadline.
        checker = DeliveryChecker(publishers)
        deadline = t0 + (scenario.drain_until + 10.0) * time_scale

        def settled() -> bool:
            if any(not broker.alive for broker in system.brokers.values()):
                return False
            for name, client in system.subscribers.items():
                report = checker.check(client, system.subscriptions[name])
                if not report.exactly_once:
                    return False
            return all(
                _knowledge_convergence(system.brokers, publishers).values()
            )

        stable = 0
        while True:
            try:
                if settled():
                    stable += 1
                else:
                    stable = 0
            except AssertionError as exc:
                failures.append(f"[delivery-safety] {exc}")
                break
            if stable >= 2:
                break
            if loop.time() >= deadline:
                break
            await asyncio.sleep(max(0.1, 0.5 * time_scale))

        for broker_id, broker in sorted(system.brokers.items()):
            if broker.failure is not None:
                failures.append(
                    f"[aio-broker] {broker_id}: {broker.failure!r}"
                )
        outcome = _collect_outcome(
            "aio", scenario, publishers, system, recorder, failures
        )
        for broker in system.brokers.values():
            outcome.mutated.update(broker.mutation_counts)
        return outcome
    finally:
        await system.shutdown()


def _run_aio_stack(
    scenario: Scenario,
    counts: Dict[str, int],
    time_scale: float,
    transport: str,
    data_dir: Optional[str],
    mutations: Tuple[str, ...],
    aio_flush_delay: Optional[float] = None,
    corrupt_rate: float = 0.0,
) -> StackOutcome:
    return asyncio.run(
        _run_aio_stack_async(
            scenario,
            counts,
            time_scale,
            transport,
            data_dir,
            mutations,
            aio_flush_delay,
            corrupt_rate,
        )
    )


# ---------------------------------------------------------------------------
# Cross-checking
# ---------------------------------------------------------------------------


def _matching_sets(
    scenario: Scenario, published: Dict[str, List[int]]
) -> Dict[str, Set[Tuple[str, int]]]:
    """Expected delivery set per subscriber, given one stack's published
    seqs — events are reconstructed from the deterministic workload
    attributes, so predicates must only use pub/seq/g (the generator's
    predicate pool guarantees this)."""
    modulus = {spec.pubend: spec.modulus for spec in scenario.publishers}
    expected: Dict[str, Set[Tuple[str, int]]] = {}
    for spec in scenario.subscribers:
        predicate = resolve_predicate(spec.predicate)
        matches: Set[Tuple[str, int]] = set()
        for pubend in spec.pubends:
            for seq in published.get(pubend, ()):
                event = Event(
                    {"pub": pubend, "seq": seq, "g": seq % modulus[pubend]}
                )
                if predicate(event):
                    matches.add((pubend, seq))
        expected[spec.subscriber] = matches
    return expected


def _preview(pairs: Any, limit: int = 3) -> str:
    items = sorted(pairs)
    head = ", ".join(repr(item) for item in items[:limit])
    more = f", ... +{len(items) - limit}" if len(items) > limit else ""
    return f"[{head}{more}]"


def compare_outcomes(
    scenario: Scenario, sim: StackOutcome, aio: StackOutcome
) -> List[str]:
    """All the ways the two stacks can disagree, as human-readable
    divergence lines (empty == conformant)."""
    divergences: List[str] = []
    for outcome in (sim, aio):
        for line in outcome.failures:
            divergences.append(f"[{outcome.stack}] {line}")

    for pubend, count in sorted(sim.attempts.items()):
        if aio.attempts.get(pubend) != count:
            divergences.append(
                f"[workload] {pubend}: sim attempted {count} publishes, "
                f"aio attempted {aio.attempts.get(pubend)} — the count "
                f"budget was not honoured"
            )

    expected_sim = _matching_sets(scenario, sim.published)
    expected_aio = _matching_sets(scenario, aio.published)
    for spec in scenario.subscribers:
        name = spec.subscriber
        for outcome, expected in ((sim, expected_sim), (aio, expected_aio)):
            delivered = outcome.delivered.get(name, set())
            missing = expected[name] - delivered
            unexpected = delivered - expected[name]
            if missing:
                divergences.append(
                    f"[{outcome.stack}] {name}: {len(missing)} matching "
                    f"publication(s) never delivered {_preview(missing)}"
                )
            if unexpected:
                divergences.append(
                    f"[{outcome.stack}] {name}: {len(unexpected)} "
                    f"delivery(ies) of unpublished or non-matching "
                    f"messages {_preview(unexpected)}"
                )
        # Cross-stack: the delivery sets may differ only where the
        # published sets differ (publish-failure timing around faults).
        allowed = expected_sim[name] ^ expected_aio[name]
        disagree = (
            sim.delivered.get(name, set()) ^ aio.delivered.get(name, set())
        ) - allowed
        if disagree:
            divergences.append(
                f"[delivery] {name}: stacks disagree on {len(disagree)} "
                f"delivery(ies) beyond the publication difference "
                f"{_preview(disagree)}"
            )

    for outcome in (sim, aio):
        published_flat = {
            (pubend, seq)
            for pubend, seqs in outcome.published.items()
            for seq in seqs
        }
        # Commit *events* may legitimately undercount the publish record:
        # the engine emits ``committed`` from a callback scheduled one
        # commit latency after the publish, and a crash inside that window
        # kills the callback while the log append survives — recovery
        # replays the committed state into the istream without re-emitting
        # lifecycle events.  The sound invariants are therefore phantom-
        # and duplicate-freedom, not set equality.
        phantom = set(outcome.committed) - published_flat
        if phantom:
            divergences.append(
                f"[{outcome.stack}] lifecycle: commit events for "
                f"{len(phantom)} publication(s) absent from the publish "
                f"record {_preview(phantom)}"
            )
        recommitted = {key: n for key, n in outcome.committed.items() if n != 1}
        if recommitted:
            divergences.append(
                f"[{outcome.stack}] lifecycle: duplicate commit events "
                f"{_preview(recommitted.items())}"
            )
        duplicated = {
            key: n for key, n in outcome.lifecycle_delivered.items() if n != 1
        }
        if duplicated:
            divergences.append(
                f"[{outcome.stack}] lifecycle: non-exactly-once delivery "
                f"event counts {_preview(duplicated.items())}"
            )
        event_keys = {
            (sub, pubend, seq)
            for (sub, pubend, seq) in outcome.lifecycle_delivered
        }
        client_keys = {
            (sub, pubend, seq)
            for sub, pairs in outcome.delivered.items()
            for (pubend, seq) in pairs
        }
        if event_keys != client_keys:
            drift = event_keys ^ client_keys
            divergences.append(
                f"[{outcome.stack}] lifecycle: delivered-event multiset "
                f"disagrees with client records on {len(drift)} "
                f"delivery(ies) {_preview(drift)}"
            )

    for spec in scenario.publishers:
        for outcome in (sim, aio):
            if not outcome.converged.get(spec.pubend, True):
                divergences.append(
                    f"[{outcome.stack}] knowledge: residual doubt below "
                    f"the published horizon of {spec.pubend} after drain"
                )
    return divergences


# ---------------------------------------------------------------------------
# The harness entry points
# ---------------------------------------------------------------------------


@dataclass
class ConformanceResult:
    """Verdict of one differential run."""

    scenario: Scenario
    mutations: Tuple[str, ...] = ()
    transport: str = "local"
    time_scale: float = DEFAULT_TIME_SCALE
    aio_flush_delay: Optional[float] = None
    divergences: List[str] = field(default_factory=list)
    sim: Optional[StackOutcome] = None
    aio: Optional[StackOutcome] = None
    elapsed: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.divergences

    def summary(self) -> str:
        verdict = "agree" if self.ok else f"DIVERGE ({len(self.divergences)})"
        sim_pub = sum(len(v) for v in (self.sim.published.values() if self.sim else []))
        aio_pub = sum(len(v) for v in (self.aio.published.values() if self.aio else []))
        return (
            f"seed={self.scenario.seed} {self.scenario.topology} "
            f"faults={len(self.scenario.faults)} "
            f"pub(sim/aio)={sim_pub}/{aio_pub} "
            f"{verdict} [{self.elapsed:.1f}s]"
        )


def normalize_for_transport(scenario: Scenario, transport: str) -> Scenario:
    """TCP is a reliable stream: ambient wire loss and per-link bursts
    cannot be injected below it, so they are stripped from the scenario
    rather than silently not applied."""
    if transport != "tcp":
        return scenario
    faults = tuple(
        fault
        for fault in scenario.faults
        if fault.kind not in ("drop_burst", "reorder_burst", "corrupt_burst")
    )
    return scenario.with_(faults=faults, drop_probability=0.0, jitter=0.0)


def run_conformance(
    scenario: Scenario,
    *,
    time_scale: float = DEFAULT_TIME_SCALE,
    transport: str = "local",
    data_dir: Optional[str] = None,
    mutations: Tuple[str, ...] = (),
    aio_flush_delay: Optional[float] = None,
    corrupt_rate: float = 0.0,
) -> ConformanceResult:
    """Execute one scenario on both backends and cross-check.

    ``corrupt_rate`` adds ambient wire corruption to the aio leg's local
    transport (each corrupted message is checksum-rejected at the
    receiver and healed by retransmission); the sim leg runs unchanged —
    the differential oracle must not notice.  Ignored for ``tcp``, where
    sub-stream pathologies cannot be injected (see
    :func:`normalize_for_transport`).
    """
    scenario = normalize_for_transport(scenario, transport)
    mutations = tuple(mutations)
    counts = message_counts(scenario)
    started = time.monotonic()
    sim = _run_sim_stack(scenario, counts)
    aio = _run_aio_stack(
        scenario,
        counts,
        time_scale,
        transport,
        data_dir,
        mutations,
        aio_flush_delay,
        corrupt_rate if transport != "tcp" else 0.0,
    )
    result = ConformanceResult(
        scenario=scenario,
        mutations=mutations,
        transport=transport,
        time_scale=time_scale,
        aio_flush_delay=aio_flush_delay,
        sim=sim,
        aio=aio,
    )
    result.divergences = compare_outcomes(scenario, sim, aio)
    result.elapsed = time.monotonic() - started
    return result


@dataclass
class ConformReport:
    """Aggregate outcome of one conformance campaign."""

    base_seed: int
    runs: int = 0
    divergences: List[ConformanceResult] = field(default_factory=list)
    repro_paths: List[str] = field(default_factory=list)
    elapsed: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.divergences


def conform(
    base_seed: int,
    runs: int,
    time_budget: Optional[float] = None,
    shrink_divergences: bool = True,
    repro_dir: Optional[str] = None,
    progress: Optional[Callable[[str], None]] = None,
    stop_on_divergence: bool = True,
    time_scale: float = DEFAULT_TIME_SCALE,
    transport: str = "local",
    mutations: Tuple[str, ...] = (),
    shrink_budget: int = 24,
    aio_flush_delay: Optional[float] = None,
    corrupt_rate: float = 0.0,
) -> ConformReport:
    """The campaign loop: generate, run differentially, shrink and
    persist the first divergence found (mirroring :func:`~repro.check.runner.fuzz`)."""
    from .shrink import shrink

    report = ConformReport(base_seed=base_seed)
    started = time.monotonic()
    say = progress if progress is not None else (lambda _line: None)

    def run_fn(candidate: Scenario) -> ConformanceResult:
        return run_conformance(
            candidate,
            time_scale=time_scale,
            transport=transport,
            mutations=mutations,
            aio_flush_delay=aio_flush_delay,
            corrupt_rate=corrupt_rate,
        )

    for index in range(runs):
        if time_budget is not None and time.monotonic() - started > time_budget:
            say(f"time budget {time_budget:.0f}s exhausted after {index} runs")
            break
        seed = scenario_seed(base_seed, index)
        result = run_fn(generate(seed))
        report.runs += 1
        say(f"[{index + 1}/{runs}] {result.summary()}")
        if result.ok:
            continue
        for line in result.divergences:
            say(f"  {line}")
        report.divergences.append(result)
        if shrink_divergences:
            say(f"shrinking seed={seed} (each probe runs both stacks) ...")
            small, small_result = shrink(
                result.scenario, run_fn, max_runs=shrink_budget
            )
            path = write_conformance_repro(
                small,
                small_result,
                directory=repro_dir,
                stem=f"conform-{base_seed}-{index}",
            )
            report.repro_paths.append(path)
            say(
                f"minimized to {len(small.faults)} fault(s); repro "
                f"written to {path}"
            )
        if stop_on_divergence:
            break
    report.elapsed = time.monotonic() - started
    return report


# ---------------------------------------------------------------------------
# Repro files (tests/corpus/conformance)
# ---------------------------------------------------------------------------


def write_conformance_repro(
    scenario: Scenario,
    result: Optional[ConformanceResult] = None,
    directory: Optional[str] = None,
    stem: str = "conform",
) -> str:
    """Serialize a divergence (or agreement) as a replayable repro file."""
    obj: Dict[str, Any] = {
        "format": CONFORM_FORMAT,
        "expect": "agree" if result is not None and result.ok else "diverge",
        "scenario": scenario.to_dict(),
    }
    if result is not None:
        obj["transport"] = result.transport
        obj["time_scale"] = result.time_scale
        obj["mutations"] = list(result.mutations)
        if result.aio_flush_delay is not None:
            obj["aio_flush_delay"] = result.aio_flush_delay
        obj["divergences"] = result.divergences
    directory = directory if directory is not None else "."
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, f"{stem}.json")
    with open(path, "w") as handle:
        json.dump(obj, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def load_conformance_repro(path: str) -> Tuple[Scenario, str, Dict[str, Any]]:
    """Read a conformance repro: (scenario, expect, run options)."""
    with open(path) as handle:
        obj = json.load(handle)
    fmt = obj.get("format")
    if fmt != CONFORM_FORMAT:
        raise ValueError(f"{path}: unsupported conformance format {fmt!r}")
    expect = obj.get("expect", "agree")
    if expect not in ("agree", "diverge"):
        raise ValueError(f"{path}: bad expect {expect!r}")
    scenario = Scenario.from_dict(obj["scenario"])
    options = {
        "transport": obj.get("transport", "local"),
        "time_scale": obj.get("time_scale", DEFAULT_TIME_SCALE),
        "mutations": tuple(obj.get("mutations", ())),
        "aio_flush_delay": obj.get("aio_flush_delay"),
    }
    return scenario, expect, options


def replay_conformance(path: str) -> Tuple[ConformanceResult, str]:
    """Re-run a conformance repro with its stored options."""
    scenario, expect, options = load_conformance_repro(path)
    result = run_conformance(
        scenario,
        time_scale=options["time_scale"],
        transport=options["transport"],
        mutations=options["mutations"],
        aio_flush_delay=options["aio_flush_delay"],
    )
    return result, expect
