"""Greedy scenario minimization: from a failing seed to a tiny repro.

Given a scenario that violates an oracle, :func:`shrink` searches for the
smallest scenario that *still* fails, by repeatedly proposing simpler
candidates and keeping any that reproduce a failure:

1. drop the entire fault schedule at once (is the workload alone enough?);
2. drop each fault individually;
3. zero the ambient link pathology (drop probability, jitter);
4. remove subscribers (down to one) and publishers (down to one);
5. halve each fault's stall window and duration.

Every candidate run is fully deterministic, so an accepted simplification
is a *guaranteed* reproduction, not a probabilistic one — which is why
shrunk repro files can be checked into ``tests/corpus/`` and replayed as
ordinary pytest cases.  Time windows (``publish_until``/``drain_until``)
are deliberately *not* shrunk: shortening the drain can manufacture
liveness failures that the original scenario does not have, and a repro
that only fails because it was not given time to recover is a false bug.

The search is greedy first-improvement with restart (each accepted
candidate re-opens all passes), bounded by ``max_runs`` scenario
executions, and memoized so structurally identical candidates are never
run twice.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Iterator, Optional, Set, Tuple

from .runner import RunResult
from .scenario import Scenario

__all__ = ["shrink", "ShrinkStats"]


@dataclass
class ShrinkStats:
    """Bookkeeping of one shrink search."""

    attempts: int = 0
    accepted: int = 0
    skipped: int = 0


def _halved(fault, attr: str):
    value = getattr(fault, attr)
    if value <= 0.2:
        return None
    return replace(fault, **{attr: round(value / 2, 2)})


def _candidates(scenario: Scenario) -> Iterator[Scenario]:
    """Simpler variants of ``scenario``, most aggressive first."""
    if scenario.faults:
        yield scenario.with_(faults=())
        for i in range(len(scenario.faults)):
            yield scenario.with_(
                faults=scenario.faults[:i] + scenario.faults[i + 1:]
            )
    if scenario.drop_probability or scenario.jitter:
        yield scenario.with_(drop_probability=0.0, jitter=0.0)
    if scenario.drop_probability:
        yield scenario.with_(drop_probability=0.0)
    if scenario.jitter:
        yield scenario.with_(jitter=0.0)
    if len(scenario.subscribers) > 1:
        for i in range(len(scenario.subscribers)):
            yield scenario.with_(
                subscribers=scenario.subscribers[:i]
                + scenario.subscribers[i + 1:]
            )
    if len(scenario.publishers) > 1:
        for i in range(len(scenario.publishers)):
            yield scenario.with_(
                publishers=scenario.publishers[:i]
                + scenario.publishers[i + 1:]
            )
    for i, fault in enumerate(scenario.faults):
        for attr in ("stall", "duration"):
            smaller = _halved(fault, attr)
            if smaller is not None:
                yield scenario.with_(
                    faults=scenario.faults[:i]
                    + (smaller,)
                    + scenario.faults[i + 1:]
                )


def shrink(
    scenario: Scenario,
    run_fn: Callable[[Scenario], RunResult],
    max_runs: int = 80,
    stats: Optional[ShrinkStats] = None,
) -> Tuple[Scenario, RunResult]:
    """Minimize a failing scenario; returns (smallest scenario, its run).

    ``run_fn`` executes one scenario and reports its verdict (normally
    :func:`~repro.check.runner.run_scenario`).  If the input scenario does
    not fail under ``run_fn``, it is returned unchanged.
    """
    stats = stats if stats is not None else ShrinkStats()
    seen: Set[str] = {scenario.to_json(indent=0)}
    best = scenario
    best_result = run_fn(scenario)
    stats.attempts += 1
    if best_result.ok:
        return best, best_result

    budget = max_runs - 1
    improved = True
    while improved and budget > 0:
        improved = False
        for candidate in _candidates(best):
            if budget <= 0:
                break
            key = candidate.to_json(indent=0)
            if key in seen:
                stats.skipped += 1
                continue
            seen.add(key)
            result = run_fn(candidate)
            stats.attempts += 1
            budget -= 1
            if not result.ok:
                best, best_result = candidate, result
                stats.accepted += 1
                improved = True
                break
    note = f"shrunk from seed {scenario.seed} ({stats.attempts} runs)"
    best = best.with_(note=note)
    return best, best_result
