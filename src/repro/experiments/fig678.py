"""Failure-injection experiments (paper section 4.2, Figures 6-8).

The setup: the ten-broker, eight-cell network of Figure 3; four pubends
at p1, each publishing 25 msgs/s of 100-byte messages (100 msgs/s total —
low, so dynamics are observable without capacity effects); pass-through
filters at intermediates; liveness parameters GCT=200 ms, NRT=600 ms,
AET=10 s, DCT=∞.

Three faults are injected (each preceded by the paper's 2-3 s stall so
traffic is actually lost):

* ``link_b1_s1``  — Figure 6: the b1-s1 link stalls, fails for 10 s, then
  recovers.  s1 nacks to b2 and recovers in a burst (sawtooth latency,
  peak ≈ stall duration); s2 is unaffected.
* ``crash_b1``    — Figure 7: broker b1 stalls, crashes, restarts 30 s
  later.  s1 and s2 lose the same messages and nack almost identically;
  b2, holding none of the lost data, forwards consolidated nacks to p1 —
  the paper's "almost perfect" consolidation: b2's cumulative nack range
  is about half of s1 + s2 combined.
* ``crash_p1``    — Figure 8: the PHB crashes for ~20 s.  With DCT=∞ the
  subends stay quiet while p1 is down (no gaps are created); on recovery
  an AckExpected probe carrying the last-logged timestamp triggers nacks
  from s1-s5 and the logged-but-unsent messages arrive with high latency
  (partial sawtooth).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..client import DeliveryChecker, PublisherClient, SubscriberClient
from ..core.config import LivenessParams, PAPER_FAULT_PARAMS
from ..faults.injector import FaultInjector
from ..topology import balanced_pubend_names, figure3_topology

__all__ = ["FaultResult", "run_fault_experiment", "FAULTS"]

FAULTS = ("link_b1_s1", "crash_b1", "crash_p1")

#: All five subscriber-hosting brokers of the Figure 3 network.
SHB_BROKERS = ("s1", "s2", "s3", "s4", "s5")


@dataclass
class FaultResult:
    """Everything the Figure 6-8 plots need, plus correctness verdicts."""

    fault: str
    #: subscriber id -> list of (message send time, latency seconds).
    latency: Dict[str, List[Tuple[float, float]]]
    #: node id -> list of (time, nack range in ticks) per nack message.
    nacks: Dict[str, List[Tuple[float, float]]]
    #: subscriber id -> exactly-once verdict against ground truth.
    exactly_once: Dict[str, bool]
    #: subscriber id -> (delivered, expected) counts.
    counts: Dict[str, Tuple[int, int]]
    fault_log: List[str] = field(default_factory=list)

    def all_exactly_once(self) -> bool:
        return all(self.exactly_once.values())

    def nack_count(self, node: str) -> int:
        return len(self.nacks.get(node, []))

    def nack_range_total(self, node: str) -> float:
        return sum(r for __, r in self.nacks.get(node, []))

    def max_latency(self, subscriber: str) -> float:
        samples = self.latency.get(subscriber, [])
        return max((lat for __, lat in samples), default=0.0)

    def steady_latency(self, subscriber: str, before: float) -> float:
        """Median latency of messages sent before ``before`` (pre-fault)."""
        values = [lat for t, lat in self.latency.get(subscriber, []) if t < before]
        values.sort()
        return values[len(values) // 2] if values else 0.0


def run_fault_experiment(
    fault: str,
    seed: int = 7,
    rate: float = 25.0,
    n_pubends: int = 4,
    msg_bytes: int = 100,
    fault_at: float = 5.0,
    stall: float = 2.5,
    params: Optional[LivenessParams] = None,
    link_outage: float = 10.0,
    broker_downtime: float = 30.0,
    phb_downtime: float = 20.0,
    settle: float = 15.0,
) -> FaultResult:
    """Run one failure-injection experiment end to end.

    Publishers run from t≈0 until the fault has healed plus ``settle``
    seconds, then the system drains and every subscriber's delivery record
    is verified against the ground truth of successfully logged messages.
    """
    if fault not in FAULTS:
        raise ValueError(f"unknown fault {fault!r}; one of {FAULTS}")
    params = params if params is not None else PAPER_FAULT_PARAMS
    names = balanced_pubend_names(n_pubends)
    system = figure3_topology(n_pubends=n_pubends, pubend_names=names).build(
        seed=seed, params=params
    )
    subscribers: Dict[str, SubscriberClient] = {}
    for shb in SHB_BROKERS:
        subscribers[f"sub_{shb}"] = system.subscribe(
            f"sub_{shb}", shb, tuple(names)
        )
    publishers: List[PublisherClient] = [
        system.publisher(name, rate=rate, body_bytes=msg_bytes) for name in names
    ]
    injector = FaultInjector(system)
    if fault == "link_b1_s1":
        injector.stall_then_fail_link("b1", "s1", at=fault_at, stall=stall, outage=link_outage)
        heal_time = fault_at + stall + link_outage
    elif fault == "crash_b1":
        injector.stall_then_crash_broker(
            "b1", at=fault_at, stall=stall, downtime=broker_downtime
        )
        heal_time = fault_at + stall + broker_downtime
    else:  # crash_p1 — the paper crashes the PHB without a stall: the
        # publisher is down with it and cannot publish at all.
        injector.at(fault_at, lambda: injector.crash_broker("p1"))
        injector.at(
            fault_at + phb_downtime, lambda: injector.restart_broker("p1")
        )
        heal_time = fault_at + phb_downtime
    for publisher in publishers:
        publisher.start(at=0.2)
    stop_at = heal_time + settle
    system.run_until(stop_at)
    for publisher in publishers:
        publisher.stop()
    system.run_until(stop_at + settle)

    checker = DeliveryChecker(publishers)
    exactly_once: Dict[str, bool] = {}
    counts: Dict[str, Tuple[int, int]] = {}
    for sub_id, client in subscribers.items():
        report = checker.check(client, system.subscriptions[sub_id])
        exactly_once[sub_id] = report.exactly_once
        counts[sub_id] = (report.delivered, report.matching_published)
    latency = {
        sub_id: [(s.t, s.value) for s in system.metrics.latency.series(sub_id).samples]
        for sub_id in subscribers
    }
    nacks = {
        node: [(s.t, s.value) for s in system.metrics.nacks.series(node).samples]
        for node in system.metrics.nacks.nodes()
    }
    return FaultResult(
        fault=fault,
        latency=latency,
        nacks=nacks,
        exactly_once=exactly_once,
        counts=counts,
        fault_log=list(injector.log),
    )
