"""Reusable drivers for the paper's experiments (Figures 4-8)."""

from .fig45 import OverheadPoint, gd_minus_be, run_overhead_point, run_overhead_sweep
from .fig678 import FAULTS, FaultResult, run_fault_experiment
