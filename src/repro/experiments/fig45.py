"""Failure-free overhead experiments (paper section 4.1, Figures 4 and 5).

The paper's setup: a two-broker asymmetric configuration — publishers at
the PHB, subscribers at the SHB — with an input rate of 2000 msgs/s of
250-byte messages, each subscriber receiving 2 msgs/s over its own
connection, subscriber counts swept up to 16000, comparing the guaranteed
delivery (GD) protocol against best-effort:

* **Figure 4**: mean CPU utilization at the SHB and PHB vs. subscriber
  count.  SHB utilization grows with subscribers for both protocols; the
  GD − best-effort gap stays constant (<4%) because GD stream state is
  consolidated across all subends of the SHB.  PHB utilization is flat in
  subscriber count, with a larger GD gap (~8%) due to logging.
* **Figure 5**: median local and remote latency vs. subscriber count.
  Remote latency grows with subscribers (fan-out queueing); the GD −
  best-effort difference is a constant ≈100 ms — the logging delay.

This driver reproduces the same sweep on the simulator's CPU cost model.
Default rates are scaled down (200 msgs/s in, subscriber counts in the
hundreds) so the sweep runs in seconds of wall time; the workload *shape*
(each subscriber receives ``per_sub_rate`` msgs/s via a group attribute
partition) is identical, and full-scale parameters are accepted.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..baselines.best_effort import BestEffortBroker
from ..core.config import LivenessParams
from ..matching.parser import parse
from ..metrics.cpu import CostModel
from ..metrics.recorder import median
from ..topology import two_broker_topology

__all__ = ["OverheadPoint", "run_overhead_point", "run_overhead_sweep", "PROTOCOLS"]

PROTOCOLS = ("gd", "best-effort")


@dataclass(frozen=True)
class OverheadPoint:
    """One measured configuration of the overhead experiment."""

    protocol: str
    n_subscribers: int
    shb_cpu: float
    phb_cpu: float
    local_median_ms: float
    remote_median_ms: float
    delivered: int

    def row(self) -> str:
        return (
            f"{self.protocol:>11}  N={self.n_subscribers:>6}  "
            f"SHB CPU {100 * self.shb_cpu:5.1f}%  PHB CPU {100 * self.phb_cpu:5.1f}%  "
            f"local {self.local_median_ms:7.1f} ms  remote {self.remote_median_ms:7.1f} ms"
        )


def run_overhead_point(
    protocol: str,
    n_subscribers: int,
    input_rate: float = 200.0,
    per_sub_rate: float = 2.0,
    msg_bytes: int = 250,
    warmup: float = 2.0,
    measure: float = 8.0,
    seed: int = 0,
    params: Optional[LivenessParams] = None,
    cost_model: Optional[CostModel] = None,
    log_commit_latency: float = 0.1,
) -> OverheadPoint:
    """Run one (protocol, subscriber-count) cell of the sweep.

    The workload partitions events into ``input_rate / per_sub_rate``
    groups via a ``group`` attribute; subscriber *i* subscribes to group
    ``i mod n_groups``, so each subscriber receives ``per_sub_rate``
    msgs/s regardless of the total subscriber count — the paper's
    workload shape.
    """
    if protocol not in PROTOCOLS:
        raise ValueError(f"unknown protocol {protocol!r}")
    n_groups = max(int(input_rate / per_sub_rate), 1)
    topo = two_broker_topology()
    topo.pubend("P0", "phb")
    topo.route("P0", "PHB", "SHB")
    factory = BestEffortBroker if protocol == "best-effort" else None
    system = topo.build(
        seed=seed,
        params=params,
        cost_model=cost_model,
        log_commit_latency=log_commit_latency,
        broker_factory=factory,
    )
    # Remote subscribers at the SHB, one group each.
    for i in range(n_subscribers):
        system.subscribe(f"sub{i}", "shb", ("P0",), parse(f"group = {i % n_groups}"))
    # One local subscriber at the PHB measures local latency (paper:
    # "for measuring local latency, a subscribing client is connected to
    # the PHB").
    local = system.subscribe("local0", "phb", ("P0",), parse("group = 0"))
    publisher = system.publisher(
        "P0",
        rate=input_rate,
        make_attributes=lambda seq: {"group": seq % n_groups},
        body_bytes=msg_bytes,
    )
    publisher.start(at=0.05)
    system.run_until(warmup)
    shb = system.brokers["shb"]
    phb = system.brokers["phb"]
    shb.accountant.reset_window()
    phb.accountant.reset_window()
    measure_start = system.now
    system.run_until(warmup + measure)
    shb_cpu = shb.accountant.utilization()
    phb_cpu = phb.accountant.utilization()
    publisher.stop()
    system.run_for(2.0)  # drain in-flight deliveries

    def window_median_ms(subscriber_ids: Sequence[str]) -> float:
        values: List[float] = []
        for sid in subscriber_ids:
            series = system.metrics.latency.series(sid)
            values.extend(
                s.value for s in series.samples if s.t >= measure_start
            )
        if not values:
            return float("nan")
        return 1000.0 * median(values)

    remote_ids = [f"sub{i}" for i in range(n_subscribers)]
    return OverheadPoint(
        protocol=protocol,
        n_subscribers=n_subscribers,
        shb_cpu=shb_cpu,
        phb_cpu=phb_cpu,
        local_median_ms=window_median_ms(["local0"]),
        remote_median_ms=window_median_ms(remote_ids),
        delivered=system.metrics.latency.delivered,
    )


def run_overhead_sweep(
    subscriber_counts: Sequence[int],
    protocols: Sequence[str] = PROTOCOLS,
    **kwargs: Any,
) -> List[OverheadPoint]:
    """The full Figure 4/5 sweep: every protocol at every subscriber count."""
    points = []
    for n in subscriber_counts:
        for protocol in protocols:
            points.append(run_overhead_point(protocol, n, **kwargs))
    return points


def gd_minus_be(points: Sequence[OverheadPoint]) -> Dict[int, Dict[str, float]]:
    """Per subscriber count: the GD − best-effort deltas the paper
    highlights (SHB CPU gap, PHB CPU gap, remote latency gap)."""
    by_key: Dict[Tuple[str, int], OverheadPoint] = {
        (p.protocol, p.n_subscribers): p for p in points
    }
    deltas: Dict[int, Dict[str, float]] = {}
    for (protocol, n), point in by_key.items():
        if protocol != "gd":
            continue
        be = by_key.get(("best-effort", n))
        if be is None:
            continue
        deltas[n] = {
            "shb_cpu_gap": point.shb_cpu - be.shb_cpu,
            "phb_cpu_gap": point.phb_cpu - be.phb_cpu,
            "remote_latency_gap_ms": point.remote_median_ms - be.remote_median_ms,
            "local_latency_gap_ms": point.local_median_ms - be.local_median_ms,
        }
    return deltas
