"""The backend-agnostic system facade.

Two runtimes host the same :class:`~repro.broker.engine.GDBrokerEngine`:
the deterministic simulator (:class:`~repro.topology.System`, built by
:meth:`Topology.build`) and the real-time asyncio runtime
(:class:`~repro.aio.runtime.AioSystem`).  Experiments, the fuzzer, and
the chaos harness should not care which one they are driving, so both
expose the same public surface, captured here as the
:class:`SystemFacade` protocol:

* ``subscribe(subscriber_id, broker_id, pubends, predicate=None, *,
  total_order=False)`` — attach a subscriber client at an SHB;
  ``predicate`` is accepted uniformly as a subscription string, a parsed
  :class:`~repro.matching.ast.Predicate`, a plain callable, or ``None``
  (match everything);
* ``publisher(pubend, rate, make_attributes=None, max_messages=None)``
  — attach a rate-driven publisher client at the pubend's PHB
  (``max_messages`` bounds its publish *attempts*, so a count-limited
  workload attempts the identical seq sequence on either backend);
* ``host_pubend(pubend_id, broker_id, log=None, ...)`` — place a pubend
  on a broker after construction (the log defaults to the backend's
  stable-storage flavour);
* ``obs`` — the system's :class:`~repro.obs.observability.Observability`
  (instrument registry, lifecycle hub, recorders);
* ``brokers`` / ``subscribers`` / ``subscriptions`` / ``publishers`` —
  the live registries differential harnesses introspect: broker hosts
  (each with ``alive`` and, when up, an ``engine`` whose
  ``stream_state()`` reports the knowledge horizons), subscriber clients
  by id, their :class:`~repro.core.subend.Subscription` records, and the
  attached publisher clients.

The protocol is ``runtime_checkable`` so harness code can assert
``isinstance(system, SystemFacade)`` against either backend — the
conformance harness (:mod:`repro.check.conformance`) does exactly that
before driving the simulator and the asyncio runtime through the same
scenario.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional, Protocol, Tuple, runtime_checkable

from .core.edges import MATCH_ALL
from .matching.parser import parse

__all__ = ["SystemFacade", "resolve_predicate"]


def resolve_predicate(predicate: Any) -> Any:
    """Normalize the uniform ``predicate`` argument of ``subscribe``.

    Strings are parsed with the subscription grammar, ``None`` matches
    everything, and anything else (a parsed AST predicate or a plain
    callable) passes through unchanged.  Both backends route their
    ``subscribe`` through this helper so the accepted forms can never
    drift apart.
    """
    if isinstance(predicate, str):
        return parse(predicate)
    if predicate is None:
        return MATCH_ALL
    return predicate


@runtime_checkable
class SystemFacade(Protocol):
    """What every backend of the protocol engine must expose."""

    obs: Any
    #: broker_id -> broker host (``alive``; ``engine.stream_state()``).
    brokers: Dict[str, Any]
    #: subscriber_id -> attached SubscriberClient.
    subscribers: Dict[str, Any]
    #: subscriber_id -> Subscription record.
    subscriptions: Dict[str, Any]
    #: Publisher clients attached via :meth:`publisher`.
    publishers: Any

    def subscribe(
        self,
        subscriber_id: str,
        broker_id: str,
        pubends: Tuple[str, ...],
        predicate: Any = None,
        *,
        total_order: bool = False,
    ) -> Any:
        """Attach a subscriber client at an SHB."""
        ...

    def publisher(
        self,
        pubend: str,
        rate: float,
        make_attributes: Optional[Callable[[int], Dict[str, Any]]] = None,
        max_messages: Optional[int] = None,
    ) -> Any:
        """Attach a rate-driven publisher client at the pubend's PHB."""
        ...

    def host_pubend(
        self,
        pubend_id: str,
        broker_id: str,
        log: Any = None,
        *,
        slot: int = 0,
        n_slots: int = 1,
        preassign_window: Optional[float] = None,
    ) -> Any:
        """Place a pubend on its hosting broker after construction."""
        ...
