"""Unified observability: instruments, exporters, series hub, tracing.

One coherent API over the three measurement channels the paper's
evaluation uses (latency series, nack counts, nack ranges) plus the
production-style instruments the reproduction grew on top of them:

* :class:`Instruments` — counters, gauges, fixed-bucket histograms with
  a no-op variant (:data:`NULL_INSTRUMENTS`) for un-observed hot paths;
* :class:`Observability` — the per-system owner (``system.obs``) that
  also holds the legacy :class:`MetricsHub` and registered
  :class:`~repro.metrics.cpu.CpuAccountant` / :class:`Tracer` peers;
* :func:`prometheus_text` / :func:`json_lines` / :func:`parse_prometheus`
  — snapshot exporters (also available via ``repro stats``).

``Tracer`` is imported lazily to keep this package importable from the
broker engine without a cycle.
"""

from .exporters import json_lines, parse_prometheus, prometheus_text, snapshot
from .hub import MetricsHub
from .instruments import (
    DEFAULT_BUCKETS,
    NULL_INSTRUMENTS,
    TICK_RANGE_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    Instruments,
    NullInstruments,
    ScopedTimer,
)
from .observability import Observability

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "Instruments",
    "MetricsHub",
    "NULL_INSTRUMENTS",
    "NullInstruments",
    "Observability",
    "ScopedTimer",
    "TICK_RANGE_BUCKETS",
    "TraceEvent",
    "Tracer",
    "json_lines",
    "parse_prometheus",
    "prometheus_text",
    "snapshot",
]


def __getattr__(name: str):
    # Lazy: obs.trace imports broker state, which imports this package.
    if name in ("Tracer", "TraceEvent"):
        from . import trace

        return getattr(trace, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
