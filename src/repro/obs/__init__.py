"""Unified observability: instruments, exporters, series hub, tracing.

One coherent API over the three measurement channels the paper's
evaluation uses (latency series, nack counts, nack ranges) plus the
production-style instruments the reproduction grew on top of them:

* :class:`Instruments` — counters, gauges, fixed-bucket histograms with
  a no-op variant (:data:`NULL_INSTRUMENTS`) for un-observed hot paths;
* :class:`Observability` — the per-system owner (``system.obs``) that
  also holds the legacy :class:`MetricsHub` and registered
  :class:`~repro.metrics.cpu.CpuAccountant` / :class:`Tracer` peers;
* :func:`prometheus_text` / :func:`json_lines` / :func:`parse_prometheus`
  — snapshot exporters (also available via ``repro stats``);
* :class:`LifecycleHub` / :class:`LifecycleListener` — the per-message
  lifecycle event bus every broker layer reports into;
* :class:`CausalTracer` / :class:`Span` — causal span trees per
  ``(pubend, tick)`` with Perfetto/Chrome export;
* :func:`build_report` / :class:`AttributionReport` — end-to-end latency
  decomposed into protocol components per delivery and route;
* :class:`DetectorSet` / :class:`Finding` — online anomaly detectors
  (horizon stall, retransmission storm, silence violation).

``Tracer`` and the causal layer are imported lazily to keep this package
importable from the broker engine without a cycle.
"""

from .exporters import json_lines, parse_prometheus, prometheus_text, snapshot
from .hub import MetricsHub
from .lifecycle import LifecycleHub, LifecycleListener
from .instruments import (
    DEFAULT_BUCKETS,
    NULL_INSTRUMENTS,
    TICK_RANGE_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    Instruments,
    NullInstruments,
    ScopedTimer,
)
from .observability import Observability

__all__ = [
    "AttributionReport",
    "CausalTracer",
    "Counter",
    "DEFAULT_BUCKETS",
    "DetectorSet",
    "Finding",
    "Gauge",
    "Histogram",
    "Instruments",
    "LatencyBreakdown",
    "LifecycleHub",
    "LifecycleListener",
    "MetricsHub",
    "NULL_INSTRUMENTS",
    "NullInstruments",
    "Observability",
    "ScopedTimer",
    "Span",
    "TICK_RANGE_BUCKETS",
    "TraceEvent",
    "Tracer",
    "build_report",
    "json_lines",
    "parse_prometheus",
    "prometheus_text",
    "snapshot",
]

_LAZY = {
    "Tracer": "trace",
    "TraceEvent": "trace",
    "CausalTracer": "causal",
    "Span": "causal",
    "AttributionReport": "attribution",
    "LatencyBreakdown": "attribution",
    "build_report": "attribution",
    "DetectorSet": "detectors",
    "Finding": "detectors",
}


def __getattr__(name: str):
    # Lazy: obs.trace imports broker state, which imports this package;
    # the causal layer follows the same pattern for consistency.
    module = _LAZY.get(name)
    if module is not None:
        import importlib

        return getattr(importlib.import_module(f".{module}", __name__), name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
