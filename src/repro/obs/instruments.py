"""Low-overhead instruments: counters, gauges, fixed-bucket histograms.

The observability layer's contract with the hot paths (broker engine,
pubend, subend, simulated links) is strict:

* an instrument is resolved **once** at construction time — a hot-path
  event is a single bound-method call on an already-resolved child, never
  a registry lookup;
* histograms use **fixed bucket boundaries** and store only per-bucket
  counts plus a running sum — never per-sample storage — so memory is
  O(buckets) no matter how long the system runs;
* code instrumented against :data:`NULL_INSTRUMENTS` pays only a no-op
  method call when observability is not wired up, so unit tests and
  microbenchmarks of the protocol core see no measurable overhead.

Instruments are identified by ``(name, labels)``.  Asking a registry for
the same identity twice returns the same child, which is what lets a
restarted broker engine keep counting into the counters of its previous
incarnation (soft state dies; measurements survive).
"""

from __future__ import annotations

import time
from bisect import bisect_left
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Instruments",
    "NullInstruments",
    "NULL_INSTRUMENTS",
    "ScopedTimer",
    "DEFAULT_BUCKETS",
    "TICK_RANGE_BUCKETS",
]

#: Seconds-scale boundaries (latency, CPU time).
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0,
)

#: Tick-count boundaries (nack ranges; 1 tick = 1 ms).
TICK_RANGE_BUCKETS: Tuple[float, ...] = (
    1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000,
)

LabelItems = Tuple[Tuple[str, str], ...]


class _Instrument:
    """Common identity of one registered child."""

    kind = "untyped"

    __slots__ = ("name", "labels")

    def __init__(self, name: str, labels: LabelItems):
        self.name = name
        self.labels = labels


class Counter(_Instrument):
    """A monotonically increasing count of events."""

    kind = "counter"

    __slots__ = ("value",)

    def __init__(self, name: str, labels: LabelItems = ()):
        super().__init__(name, labels)
        self.value = 0.0

    def inc(self, by: float = 1.0) -> None:
        if by < 0:
            raise ValueError("counters only go up")
        self.value += by


class Gauge(_Instrument):
    """A value that can go up and down (queue depth, horizon, prefix)."""

    kind = "gauge"

    __slots__ = ("value",)

    def __init__(self, name: str, labels: LabelItems = ()):
        super().__init__(name, labels)
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, by: float = 1.0) -> None:
        self.value += by

    def dec(self, by: float = 1.0) -> None:
        self.value -= by


class Histogram(_Instrument):
    """Fixed-boundary cumulative-bucket histogram (Prometheus semantics).

    ``counts[i]`` is the number of observations ``<= boundaries[i]``
    exclusive of earlier buckets; the implicit ``+Inf`` bucket is
    ``count``.  No sample is ever stored.
    """

    kind = "histogram"

    __slots__ = ("boundaries", "counts", "sum", "count")

    def __init__(
        self,
        name: str,
        labels: LabelItems = (),
        boundaries: Sequence[float] = DEFAULT_BUCKETS,
    ):
        super().__init__(name, labels)
        bounds = tuple(float(b) for b in boundaries)
        if list(bounds) != sorted(set(bounds)):
            raise ValueError("histogram boundaries must be strictly increasing")
        self.boundaries = bounds
        self.counts = [0] * len(bounds)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        index = bisect_left(self.boundaries, value)
        if index < len(self.counts):
            self.counts[index] += 1
        self.sum += value
        self.count += 1

    def bucket_pairs(self) -> List[Tuple[float, int]]:
        """(upper bound, cumulative count) pairs, ending with +Inf."""
        out: List[Tuple[float, int]] = []
        running = 0
        for bound, count in zip(self.boundaries, self.counts):
            running += count
            out.append((bound, running))
        out.append((float("inf"), self.count))
        return out


class _NullCounter:
    """Shared do-nothing counter for un-observed code paths."""

    __slots__ = ()

    def inc(self, by: float = 1.0) -> None:
        pass


class _NullGauge:
    __slots__ = ()

    def set(self, value: float) -> None:
        pass

    def inc(self, by: float = 1.0) -> None:
        pass

    def dec(self, by: float = 1.0) -> None:
        pass


class _NullHistogram:
    __slots__ = ()

    def observe(self, value: float) -> None:
        pass


_NULL_COUNTER = _NullCounter()
_NULL_GAUGE = _NullGauge()
_NULL_HISTOGRAM = _NullHistogram()


class _Family:
    """All children of one metric name (shared help/kind/label schema)."""

    __slots__ = ("name", "kind", "help", "label_names", "children")

    def __init__(self, name: str, kind: str, help_text: str, label_names: Tuple[str, ...]):
        self.name = name
        self.kind = kind
        self.help = help_text
        self.label_names = label_names
        self.children: Dict[LabelItems, Any] = {}


class Instruments:
    """The registry of all live instruments of one system.

    ``counter``/``gauge``/``histogram`` are get-or-create on
    ``(name, labels)``: instrumented components resolve their children at
    construction time and a re-constructed component (e.g. a restarted
    broker engine) picks up exactly where the previous incarnation left
    off.  A name registered twice with a different kind or label schema
    is a programming error and raises immediately.
    """

    def __init__(self) -> None:
        self._families: Dict[str, _Family] = {}

    # -- registration --------------------------------------------------

    def _family(
        self, name: str, kind: str, help_text: str, label_names: Tuple[str, ...]
    ) -> _Family:
        family = self._families.get(name)
        if family is None:
            family = _Family(name, kind, help_text, label_names)
            self._families[name] = family
            return family
        if family.kind != kind:
            raise ValueError(
                f"metric {name!r} already registered as {family.kind}, not {kind}"
            )
        if family.label_names != label_names:
            raise ValueError(
                f"metric {name!r} label schema {family.label_names} != {label_names}"
            )
        if help_text and not family.help:
            family.help = help_text
        return family

    @staticmethod
    def _label_items(labels: Dict[str, Any]) -> LabelItems:
        return tuple(sorted((k, str(v)) for k, v in labels.items()))

    def counter(self, name: str, help: str = "", **labels: Any) -> Counter:
        items = self._label_items(labels)
        family = self._family(name, "counter", help, tuple(k for k, __ in items))
        child = family.children.get(items)
        if child is None:
            child = Counter(name, items)
            family.children[items] = child
        return child

    def gauge(self, name: str, help: str = "", **labels: Any) -> Gauge:
        items = self._label_items(labels)
        family = self._family(name, "gauge", help, tuple(k for k, __ in items))
        child = family.children.get(items)
        if child is None:
            child = Gauge(name, items)
            family.children[items] = child
        return child

    def histogram(
        self,
        name: str,
        help: str = "",
        boundaries: Sequence[float] = DEFAULT_BUCKETS,
        **labels: Any,
    ) -> Histogram:
        items = self._label_items(labels)
        family = self._family(name, "histogram", help, tuple(k for k, __ in items))
        child = family.children.get(items)
        if child is None:
            child = Histogram(name, items, boundaries=boundaries)
            family.children[items] = child
        elif child.boundaries != tuple(float(b) for b in boundaries):
            raise ValueError(f"histogram {name!r} boundaries differ across sites")
        return child

    # -- collection ----------------------------------------------------

    def families(self) -> Iterator[Tuple[str, str, str, List[Any]]]:
        """``(name, kind, help, children)`` sorted by name; children
        sorted by label values — the stable order exporters rely on."""
        for name in sorted(self._families):
            family = self._families[name]
            children = [family.children[key] for key in sorted(family.children)]
            yield name, family.kind, family.help, children

    def names(self) -> List[str]:
        return sorted(self._families)

    def get(self, name: str, **labels: Any) -> Optional[Any]:
        """Look up an existing child without creating it."""
        family = self._families.get(name)
        if family is None:
            return None
        return family.children.get(self._label_items(labels))

    def total(self, name: str) -> float:
        """Sum of a counter/gauge family over all children (histograms:
        total observation count)."""
        family = self._families.get(name)
        if family is None:
            return 0.0
        if family.kind == "histogram":
            return float(sum(c.count for c in family.children.values()))
        return float(sum(c.value for c in family.children.values()))

    def __len__(self) -> int:
        return sum(len(f.children) for f in self._families.values())


class NullInstruments:
    """A registry stand-in whose instruments all do nothing.

    Components take ``instruments=NULL_INSTRUMENTS`` by default, so
    protocol classes used standalone (unit tests, microbenchmarks) pay a
    no-op method call per event and allocate nothing.
    """

    def counter(self, name: str, help: str = "", **labels: Any) -> _NullCounter:
        return _NULL_COUNTER

    def gauge(self, name: str, help: str = "", **labels: Any) -> _NullGauge:
        return _NULL_GAUGE

    def histogram(
        self,
        name: str,
        help: str = "",
        boundaries: Sequence[float] = DEFAULT_BUCKETS,
        **labels: Any,
    ) -> _NullHistogram:
        return _NULL_HISTOGRAM

    def names(self) -> List[str]:
        return []

    def __len__(self) -> int:
        return 0


NULL_INSTRUMENTS = NullInstruments()


class ScopedTimer:
    """Times a ``with`` block into a histogram and/or a CpuAccountant.

    Bridges the new instruments and the existing work-unit CPU cost model
    (:class:`~repro.metrics.cpu.CpuAccountant`): when ``cost`` is given
    the accountant is charged that modelled cost (the Figure-4 currency);
    otherwise it is charged the measured wall time.  Either way the
    histogram sees the measured duration, so the two views stay attached
    to the same code region and can be cross-checked.
    """

    __slots__ = ("histogram", "accountant", "cost", "category", "clock", "_t0", "elapsed")

    def __init__(
        self,
        histogram: Any = None,
        accountant: Any = None,
        cost: Optional[float] = None,
        category: str = "misc",
        clock: Any = time.perf_counter,
    ):
        self.histogram = histogram if histogram is not None else _NULL_HISTOGRAM
        self.accountant = accountant
        self.cost = cost
        self.category = category
        self.clock = clock
        self._t0 = 0.0
        self.elapsed = 0.0

    def __enter__(self) -> "ScopedTimer":
        self._t0 = self.clock()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.elapsed = max(self.clock() - self._t0, 0.0)
        self.histogram.observe(self.elapsed)
        if self.accountant is not None:
            charge = self.cost if self.cost is not None else self.elapsed
            self.accountant.charge(charge, self.category)
