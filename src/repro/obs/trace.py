"""Structured event tracing for simulated runs.

Debugging a distributed protocol means asking "what exactly happened, in
order?"  A :class:`Tracer` hooks a built
:class:`~repro.topology.System` and records a timestamped, structured
event stream: every broker-to-broker send, every client delivery, every
publish, and every fault — without changing the run's behaviour (hooks
wrap, then delegate).

Traces support filtering, textual rendering, and JSON-lines export, and
are deterministic for a deterministic run, so two traces of the same seed
can be diffed to localize a regression.

A tracer built against a system that carries an
:class:`~repro.obs.observability.Observability` registers itself as a
peer of that object, so ``system.obs`` snapshots report trace volume
alongside the instruments.  (This module used to live at
``repro.sim.trace``; that path remains importable as a deprecation shim.)
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, TextIO

from ..broker.state import Envelope, LinkStatusMessage
from ..core.messages import (
    AckExpectedMessage,
    AckMessage,
    KnowledgeMessage,
    NackMessage,
)
from .lifecycle import LifecycleListener

__all__ = ["TraceEvent", "Tracer"]


@dataclass(frozen=True, slots=True)
class TraceEvent:
    """One recorded event.

    ``seq`` is a per-tracer monotonic sequence number: events recorded at
    the same simulated instant sort (and render) in recording order, so
    same-seed trace diffs are byte-stable even where timestamps tie.
    """

    t: float
    kind: str
    node: str
    detail: Dict[str, Any] = field(default_factory=dict)
    seq: int = 0

    @property
    def sort_key(self) -> tuple:
        return (self.t, self.seq)

    def render(self) -> str:
        parts = " ".join(f"{k}={v}" for k, v in sorted(self.detail.items()))
        return f"{self.t:10.4f} #{self.seq:<6d} {self.kind:<12} {self.node:<6} {parts}"

    def to_json(self) -> str:
        return json.dumps(
            {
                "t": self.t,
                "seq": self.seq,
                "kind": self.kind,
                "node": self.node,
                **self.detail,
            }
        )


def _describe_message(message: Any) -> Dict[str, Any]:
    if isinstance(message, Envelope):
        inner = _describe_message(message.payload)
        if message.sideways:
            inner["sideways"] = True
        if message.target_cell:
            inner["target_cell"] = message.target_cell
        return inner
    if isinstance(message, KnowledgeMessage):
        return {
            "msg": "retransmit" if message.retransmit else "knowledge",
            "pubend": message.pubend,
            "d": len(message.data),
            "fin": message.fin_prefix,
            "f_runs": len(message.f_ranges),
        }
    if isinstance(message, AckMessage):
        return {"msg": "ack", "pubend": message.pubend, "up_to": message.up_to}
    if isinstance(message, NackMessage):
        return {
            "msg": "nack",
            "pubend": message.pubend,
            "ticks": message.tick_count(),
        }
    if isinstance(message, AckExpectedMessage):
        return {"msg": "ack_expected", "pubend": message.pubend, "up_to": message.up_to}
    if isinstance(message, LinkStatusMessage):
        return {"msg": "link_status", "cells": len(message.reachable_cells)}
    return {"msg": type(message).__name__}


class _FlushListener(LifecycleListener):
    """Surfaces the batching machinery's flush decisions as flat trace
    events — ``knowledge_flush`` when a timer's coalesced message went
    out, ``flush_timer_cancelled`` when it fired with nothing to send."""

    def __init__(self, tracer: "Tracer"):
        self.tracer = tracer

    def knowledge_flushed(self, t, node, pubend, cell, ticks, sent):
        kind = "knowledge_flush" if sent else "flush_timer_cancelled"
        self.tracer._record(
            kind, node, {"pubend": pubend, "cell": cell, "ticks": len(ticks)}
        )


class Tracer:
    """Records a structured event stream from a simulated system."""

    def __init__(self, system, capture_link_status: bool = False, obs=None):
        self.system = system
        self.capture_link_status = capture_link_status
        self.events: List[TraceEvent] = []
        self._installed = False
        self._seq = 0
        self._original_sends: Dict[str, Callable] = {}
        self._obs = obs if obs is not None else getattr(system, "obs", None)
        if self._obs is not None:
            self._obs.attach_tracer(self)

    # -- hook installation ------------------------------------------------

    def install(self) -> "Tracer":
        """Wrap every broker's send and delivery paths (idempotent)."""
        if self._installed:
            return self
        self._installed = True
        for broker_id, broker in self.system.brokers.items():
            self._wrap_broker(broker)
        if self._obs is not None:
            self._obs.lifecycle.attach(_FlushListener(self))
        return self

    def _wrap_broker(self, broker) -> None:
        original_send = broker.send
        tracer = self

        def traced_send(dst: str, message: Any, size_bytes: int = 100):
            described = _describe_message(message)
            if described.get("msg") != "link_status" or tracer.capture_link_status:
                tracer._record(
                    "send", broker.node_id, dict(described, to=dst)
                )
            return original_send(dst, message, size_bytes)

        broker.send = traced_send
        self._original_sends[broker.node_id] = original_send

        if hasattr(broker, "deliver_to_client"):
            original_deliver = broker.deliver_to_client

            def traced_deliver(subscriber, pubend, tick, payload):
                tracer._record(
                    "deliver",
                    broker.node_id,
                    {"subscriber": subscriber, "pubend": pubend, "tick": tick},
                )
                return original_deliver(subscriber, pubend, tick, payload)

            broker.deliver_to_client = traced_deliver

        if hasattr(broker, "publish"):
            original_publish = broker.publish

            def traced_publish(pubend_id, payload):
                tick = original_publish(pubend_id, payload)
                tracer._record(
                    "publish",
                    broker.node_id,
                    {"pubend": pubend_id, "tick": tick, "ok": tick is not None},
                )
                return tick

            broker.publish = traced_publish

    def record_fault(self, description: str) -> None:
        """Faults are recorded by the caller (the injector acts on links
        and processes directly)."""
        self._record("fault", "-", {"what": description})

    def _record(self, kind: str, node: str, detail: Dict[str, Any]) -> None:
        self.events.append(
            TraceEvent(self.system.scheduler.now, kind, node, detail, self._seq)
        )
        self._seq += 1

    # -- queries ------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.events)

    def filter(
        self,
        kind: Optional[str] = None,
        node: Optional[str] = None,
        msg: Optional[str] = None,
        t0: float = float("-inf"),
        t1: float = float("inf"),
    ) -> List[TraceEvent]:
        out = []
        for event in self.events:
            if kind is not None and event.kind != kind:
                continue
            if node is not None and event.node != node:
                continue
            if msg is not None and event.detail.get("msg") != msg:
                continue
            if not t0 <= event.t < t1:
                continue
            out.append(event)
        return out

    def events_sorted(self) -> List[TraceEvent]:
        """Events by ``(t, seq)`` — total order, byte-stable per seed."""
        return sorted(self.events, key=lambda e: e.sort_key)

    def render(self, events: Optional[Iterable[TraceEvent]] = None) -> str:
        chosen = list(events) if events is not None else self.events_sorted()
        return "\n".join(event.render() for event in chosen)

    def write_jsonl(self, out: TextIO) -> int:
        for event in self.events_sorted():
            out.write(event.to_json() + "\n")
        return len(self.events)

    def counts(self) -> Dict[str, int]:
        """Event counts by (kind, msg) — a run's traffic fingerprint."""
        out: Dict[str, int] = {}
        for event in self.events:
            key = event.kind
            msg = event.detail.get("msg")
            if msg:
                key = f"{key}:{msg}"
            out[key] = out.get(key, 0) + 1
        return out
