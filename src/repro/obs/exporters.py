"""Snapshot exporters: Prometheus text format and JSON lines.

Exporters read an :class:`~repro.obs.instruments.Instruments` registry
(and nothing else) and render every family in a stable sorted order, so
two snapshots of the same deterministic run are byte-identical — which is
what lets golden-file tests pin the metric catalogue.

A small parser for the Prometheus text format is included so tests (and
users post-processing ``repro stats`` output) do not need an external
dependency to read snapshots back.
"""

from __future__ import annotations

import json
import math
from typing import Any, Dict, List, Optional, TextIO, Tuple

from .instruments import Counter, Gauge, Histogram, Instruments

__all__ = [
    "prometheus_text",
    "json_lines",
    "snapshot",
    "parse_prometheus",
]


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _label_text(labels: Tuple[Tuple[str, str], ...], extra: str = "") -> str:
    parts = [f'{k}="{_escape(v)}"' for k, v in labels]
    if extra:
        parts.append(extra)
    if not parts:
        return ""
    return "{" + ",".join(parts) + "}"


def prometheus_text(instruments: Instruments) -> str:
    """The registry in the Prometheus text exposition format."""
    lines: List[str] = []
    for name, kind, help_text, children in instruments.families():
        if help_text:
            lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} {kind}")
        for child in children:
            if isinstance(child, Histogram):
                for bound, cumulative in child.bucket_pairs():
                    le = _label_text(
                        child.labels, f'le="{_format_value(bound)}"'
                    )
                    lines.append(f"{name}_bucket{le} {cumulative}")
                labels = _label_text(child.labels)
                lines.append(f"{name}_sum{labels} {_format_value(child.sum)}")
                lines.append(f"{name}_count{labels} {child.count}")
            else:
                labels = _label_text(child.labels)
                lines.append(f"{name}{labels} {_format_value(child.value)}")
    return "\n".join(lines) + "\n"


def snapshot(instruments: Instruments) -> List[Dict[str, Any]]:
    """The registry as plain dicts (one per child), JSON-ready."""
    out: List[Dict[str, Any]] = []
    for name, kind, help_text, children in instruments.families():
        for child in children:
            entry: Dict[str, Any] = {
                "name": name,
                "type": kind,
                "labels": dict(child.labels),
            }
            if isinstance(child, Histogram):
                entry["count"] = child.count
                entry["sum"] = child.sum
                entry["buckets"] = [
                    {"le": bound if bound != math.inf else "+Inf", "count": c}
                    for bound, c in child.bucket_pairs()
                ]
            elif isinstance(child, (Counter, Gauge)):
                entry["value"] = child.value
            out.append(entry)
    return out


def json_lines(instruments: Instruments, out: Optional[TextIO] = None) -> str:
    """The snapshot as JSON lines (one child per line)."""
    text = "\n".join(
        json.dumps(entry, sort_keys=True) for entry in snapshot(instruments)
    )
    text = text + "\n" if text else ""
    if out is not None:
        out.write(text)
    return text


def _parse_labels(text: str) -> Dict[str, str]:
    labels: Dict[str, str] = {}
    i = 0
    while i < len(text):
        eq = text.index("=", i)
        key = text[i:eq].strip().lstrip(",").strip()
        assert text[eq + 1] == '"', f"malformed label at {text[i:]!r}"
        j = eq + 2
        value: List[str] = []
        while text[j] != '"':
            if text[j] == "\\":
                j += 1
                value.append({"n": "\n", "\\": "\\", '"': '"'}.get(text[j], text[j]))
            else:
                value.append(text[j])
            j += 1
        labels[key] = "".join(value)
        i = j + 1
    return labels


def parse_prometheus(text: str) -> Dict[str, Dict[str, Any]]:
    """Parse Prometheus text format into
    ``{family: {"type": ..., "help": ..., "samples": [(name, labels, value)]}}``.

    Histogram ``_bucket``/``_sum``/``_count`` samples are attached to
    their base family.  Raises ``ValueError`` on malformed lines, which
    is exactly what the golden-file test wants to detect.
    """
    families: Dict[str, Dict[str, Any]] = {}

    def family(name: str) -> Dict[str, Any]:
        return families.setdefault(
            name, {"type": "untyped", "help": "", "samples": []}
        )

    for raw in text.splitlines():
        line = raw.strip()
        if not line:
            continue
        if line.startswith("# HELP "):
            __, __, rest = line.partition("# HELP ")
            name, __, help_text = rest.partition(" ")
            family(name)["help"] = help_text
            continue
        if line.startswith("# TYPE "):
            __, __, rest = line.partition("# TYPE ")
            name, __, kind = rest.partition(" ")
            family(name)["type"] = kind.strip()
            continue
        if line.startswith("#"):
            continue
        if "{" in line:
            name = line[: line.index("{")]
            close = line.rindex("}")
            labels = _parse_labels(line[line.index("{") + 1 : close])
            value_text = line[close + 1 :].strip()
        else:
            name, __, value_text = line.partition(" ")
            labels = {}
        if not name or not value_text:
            raise ValueError(f"malformed sample line: {raw!r}")
        value = float(value_text.replace("+Inf", "inf").replace("-Inf", "-inf"))
        base = name
        for suffix in ("_bucket", "_sum", "_count"):
            if name.endswith(suffix) and name[: -len(suffix)] in families:
                base = name[: -len(suffix)]
                break
        family(base)["samples"].append((name, labels, value))
    return families
