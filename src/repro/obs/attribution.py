"""Latency attribution: where did a delivery's end-to-end time go?

Given a :class:`~repro.obs.causal.CausalTracer`'s records,
:func:`build_report` decomposes every delivery's end-to-end latency
(client publish → subscriber observation) into named components that
**always sum to the total** (any interval the records cannot explain is
reported as ``unattributed`` rather than silently absorbed):

``commit``
    publish call → pubend log commit at the hosting broker.
``matching``
    time a hop spent deciding/constructing the forward (availability at
    the sender → first send), excluding flush and retransmit waits.
``flush_wait``
    time the tick sat in an ostream's pending flush (PR-4 batching)
    before going on the wire.
``retransmit_wait``
    first send → the send whose copy actually arrived, when the arriving
    copy was a curiosity-answering retransmission (covers the drop +
    nack round trip).
``transit``
    wire time of each hop (send → envelope reaches the host).
``queueing``
    host arrival → broker CPU got to it (cost-model work queue).
``horizon_wait``
    data ingested at the subscriber's broker → delivery queued on the
    client connection (doubt-horizon resolution: gap fills, ordering,
    silence round trips).
``fanout``
    client write queued → subscriber observed it (per-subscriber CPU +
    client link latency).

The decomposition walks the *arrival chain* backwards from the
subscriber's broker: each node's first arrival of the tick records which
upstream send it matched, so the chain reconstructs the actual path
(including sideways relays) rather than assuming the static route.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["COMPONENTS", "LatencyBreakdown", "AttributionReport", "build_report"]

COMPONENTS = (
    "commit",
    "matching",
    "flush_wait",
    "retransmit_wait",
    "transit",
    "queueing",
    "horizon_wait",
    "fanout",
    "unattributed",
)


@dataclass
class LatencyBreakdown:
    """One delivery's decomposition; ``sum(components) == total``."""

    subscriber: str
    pubend: str
    tick: int
    total: float
    components: Dict[str, float]
    path: Tuple[str, ...]  # broker chain, publisher-host first
    complete: bool  # False when records were missing (residual only)

    def check_sum(self, tolerance: float = 1e-9) -> bool:
        return abs(sum(self.components.values()) - self.total) <= tolerance


def _overlap(a0: float, a1: float, b0: float, b1: float) -> float:
    return max(0.0, min(a1, b1) - max(a0, b0))


def _breakdown(tracer, delivery) -> LatencyBreakdown:
    subscriber, pubend, tick, t_deliver, shb = delivery
    key = (pubend, tick)
    components = {name: 0.0 for name in COMPONENTS[:-1]}
    pub = tracer.pubs.get(key)
    write = tracer.client_writes.get((subscriber, pubend, tick))
    if pub is None or pub.t_commit is None or write is None:
        total = 0.0 if pub is None else t_deliver - pub.t_pub
        return LatencyBreakdown(
            subscriber, pubend, tick, total, {"unattributed": total}, (), False
        )
    total = t_deliver - pub.t_pub
    components["commit"] = pub.t_commit - pub.t_pub

    # Reconstruct the broker chain backwards from the subscriber's host.
    chain: List[Tuple[str, object]] = []
    node, complete, seen = shb, True, set()
    while node != pub.node and node not in seen:
        seen.add(node)
        arrival = tracer.arrivals.get((node, pubend, tick))
        if arrival is None or not arrival.src:
            complete = False
            break
        chain.append((node, arrival))
        node = arrival.send_node or arrival.src
    chain.reverse()

    t_avail, prev = pub.t_commit, pub.node
    for node, arrival in chain:
        send_t = arrival.send_t
        if send_t is None:
            # Unjoined send (e.g. upstream crashed mid-flight): charge the
            # whole gap to the residual by skipping component assignment.
            complete = False
            t_avail, prev = arrival.t_proc, node
            continue
        first_send = min(
            (t for t, _ in tracer.send_times.get((prev, pubend, tick), ())),
            default=send_t,
        )
        first_send = min(max(first_send, t_avail), send_t)
        # [t_avail, first_send): deciding + (possibly) batched flush hold.
        flush = 0.0
        cell = arrival.send_cell
        if cell is not None:
            window = tracer.flush_windows.get((prev, pubend, cell, tick))
            if window is not None:
                defer_t, flush_t = window
                flush = _overlap(
                    t_avail, first_send, defer_t, flush_t if flush_t else first_send
                )
        components["flush_wait"] += flush
        components["matching"] += (first_send - t_avail) - flush
        components["retransmit_wait"] += send_t - first_send
        components["transit"] += arrival.t_raw - send_t
        components["queueing"] += arrival.t_proc - arrival.t_raw
        t_avail, prev = arrival.t_proc, node

    t_write, _write_node = write
    components["horizon_wait"] = t_write - t_avail
    components["fanout"] = t_deliver - t_write

    residual = total - sum(components.values())
    components["unattributed"] = residual
    if abs(residual) < 1e-12:
        components["unattributed"] = 0.0
    path = (pub.node,) + tuple(node for node, _ in chain)
    return LatencyBreakdown(
        subscriber, pubend, tick, total, components, path, complete
    )


def _percentile(values: Sequence[float], q: float) -> float:
    if not values:
        return 0.0
    ordered = sorted(values)
    index = min(len(ordered) - 1, max(0, int(round(q * (len(ordered) - 1)))))
    return ordered[index]


@dataclass
class RouteStats:
    """Aggregated component statistics for one (pubend, subscriber) route."""

    pubend: str
    subscriber: str
    count: int
    totals: Dict[str, float]
    p50: Dict[str, float]
    p95: Dict[str, float]
    peak: Dict[str, float]


@dataclass
class AttributionReport:
    """All per-delivery breakdowns plus per-route percentile aggregates."""

    breakdowns: List[LatencyBreakdown]
    routes: List[RouteStats] = field(default_factory=list)

    @property
    def complete(self) -> bool:
        return all(b.complete for b in self.breakdowns)

    def format(self, top: int = 0) -> str:
        lines = [
            f"latency attribution: {len(self.breakdowns)} deliveries,"
            f" {len(self.routes)} routes"
        ]
        header = f"{'route':<24} {'n':>5} {'stat':>5}  " + " ".join(
            f"{name:>11}" for name in COMPONENTS + ("total",)
        )
        lines.append(header)
        for route in self.routes:
            label = f"{route.pubend}->{route.subscriber}"
            for stat, table in (("p50", route.p50), ("p95", route.p95),
                                ("max", route.peak)):
                cells = " ".join(
                    f"{table.get(name, 0.0) * 1e3:9.3f}ms"
                    for name in COMPONENTS + ("total",)
                )
                lines.append(f"{label:<24} {route.count:>5} {stat:>5}  {cells}")
        if top:
            lines.append("slowest deliveries:")
            slowest = sorted(
                self.breakdowns, key=lambda b: -b.total
            )[:top]
            for b in slowest:
                dominant = max(b.components, key=lambda k: b.components[k])
                lines.append(
                    f"  ({b.pubend},{b.tick}) -> {b.subscriber}: "
                    f"{b.total * 1e3:.3f}ms total, dominated by {dominant} "
                    f"({b.components[dominant] * 1e3:.3f}ms) via {'>'.join(b.path)}"
                )
        return "\n".join(lines) + "\n"


def build_report(tracer) -> AttributionReport:
    """Decompose every delivery the tracer saw; aggregate per route."""
    breakdowns = [_breakdown(tracer, d) for d in tracer.deliveries]
    by_route: Dict[Tuple[str, str], List[LatencyBreakdown]] = {}
    for b in breakdowns:
        by_route.setdefault((b.pubend, b.subscriber), []).append(b)
    routes = []
    for (pubend, subscriber), group in sorted(by_route.items()):
        names = COMPONENTS + ("total",)
        series = {
            name: [
                b.total if name == "total" else b.components.get(name, 0.0)
                for b in group
            ]
            for name in names
        }
        routes.append(
            RouteStats(
                pubend,
                subscriber,
                len(group),
                totals={name: sum(series[name]) for name in names},
                p50={name: _percentile(series[name], 0.50) for name in names},
                p95={name: _percentile(series[name], 0.95) for name in names},
                peak={name: max(series[name]) if series[name] else 0.0
                      for name in names},
            )
        )
    return AttributionReport(breakdowns, routes)
