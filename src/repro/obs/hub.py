"""MetricsHub: the experiment-facing series recorders, as an obs peer.

Historically this class lived in :mod:`repro.metrics.recorder` and every
experiment hand-wired one.  It is now owned by
:class:`~repro.obs.observability.Observability` (``system.obs.hub``) and
the old import path is a deprecation shim.  The class itself is
unchanged: latency and nack *series* (per-sample, keyed by send time) are
what the paper's figures plot, and they complement — not duplicate — the
fixed-bucket instruments, which are what production monitoring scrapes.
"""

from __future__ import annotations

from typing import Dict

from ..metrics.recorder import LatencyRecorder, NackRecorder, Series

__all__ = ["MetricsHub"]


class MetricsHub:
    """All series recorders of one experiment, injected into brokers/clients."""

    def __init__(self) -> None:
        self.latency = LatencyRecorder()
        self.nacks = NackRecorder()
        self.counters: Dict[str, int] = {}
        self.custom: Dict[str, Series] = {}

    def bump(self, counter: str, by: int = 1) -> None:
        self.counters[counter] = self.counters.get(counter, 0) + by

    def series(self, name: str) -> Series:
        return self.custom.setdefault(name, Series(name))
