"""Causal per-message lifecycle tracing.

A :class:`CausalTracer` subscribes to the system's
:class:`~repro.obs.lifecycle.LifecycleHub` and turns the flat stream of
protocol moments into a **span tree per publication identity**
``(pubend, tick)`` — the paper's ``(stream, seq)``.  Each span is an
interval of simulated time attributed to one node, with a causal parent
link:

* a ``transit`` span covers send → remote accumulate (wire, CPU queue,
  and istream processing in one hop record; a transit that never closes
  was lost in flight).  It is parented on the span that brought the data
  to the sending broker — or on the ``nack_handle`` span when the send
  is a retransmission (the nack *caused* it), or on the ``flush_timer``
  span when batched propagation held it back;
* an ``ingest`` span exists only for the local hop (commit → istream at
  the publisher-hosting broker), parented on the ``publish`` span;
* a ``deliver`` span (client write → client observation) is parented on
  the span that brought the tick's data to the delivering broker.

Alongside the spans the tracer keeps the flat per-tick records —
publish/commit times, first arrivals per node, send times, flush
windows, client writes — that :mod:`repro.obs.attribution` walks to
decompose end-to-end latency.

The tracer is **pure observation**: it never schedules events, touches
no protocol state, and therefore cannot change a run's behaviour or its
result digest.

Export: :meth:`CausalTracer.export_chrome` writes the span store in the
Chrome trace-event JSON format (one "process" per broker, one "thread"
lane per pubend, flow arrows for cross-node causal links), loadable in
Perfetto / ``chrome://tracing``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, NamedTuple, Optional, Tuple

from .lifecycle import LifecycleListener

__all__ = ["Span", "CausalTracer"]

Key = Tuple[str, int]


@dataclass(slots=True)
class Span:
    """One attributed interval (or instant) of a message's life."""

    sid: int
    parent: Optional[int]
    name: str
    node: str
    pubend: str
    tick: Optional[int]
    t0: float
    t1: Optional[float] = None
    attrs: Dict[str, Any] = field(default_factory=dict)

    @property
    def open(self) -> bool:
        return self.t1 is None

    def duration(self) -> Optional[float]:
        return None if self.t1 is None else self.t1 - self.t0


class _Arrival(NamedTuple):
    """First arrival of a tick's data at one node.

    A NamedTuple rather than a dataclass: arrival records are the
    highest-volume allocation of a traced run, and tuples of scalars are
    untracked by the cycle collector.
    """

    t_raw: float  # envelope reached the host (pre CPU queue)
    t_proc: float  # engine accumulated it into the istream
    src: str
    send_t: Optional[float]  # matched send at the upstream node
    send_node: Optional[str]
    send_cell: Optional[str]
    retransmit: bool
    span: Optional[int]  # hop span id (transit, or local ingest)


@dataclass(slots=True)
class _Pub:
    t_pub: float
    node: str
    t_commit: Optional[float] = None


class CausalTracer(LifecycleListener):
    """Span-tree recorder over the lifecycle hub (pure observation)."""

    def __init__(self, system, obs=None):
        self.system = system
        self.obs = obs if obs is not None else getattr(system, "obs", None)
        self._installed = False
        self.spans: List[Span] = []
        #: span ids per publication identity
        self._by_key: Dict[Key, List[int]] = {}
        #: spans that cover tick *ranges* (nacks); queried by containment
        self._range_spans: List[Tuple[int, str, Tuple[Tuple[int, int], ...]]] = []
        self._fault_spans: List[int] = []

        # -- flat records consumed by repro.obs.attribution --------------
        self.pubs: Dict[Key, _Pub] = {}
        self.arrivals: Dict[Tuple[str, str, int], _Arrival] = {}
        self.send_times: Dict[Tuple[str, str, int], List[Tuple[float, bool]]] = {}
        #: (node, pubend, cell, tick) -> [defer_t, flush_t or None]
        self.flush_windows: Dict[Tuple[str, str, str, int], List[Optional[float]]] = {}
        self.client_writes: Dict[Tuple[str, str, int], Tuple[float, str]] = {}
        #: (subscriber, pubend, tick, t_delivered, node)
        self.deliveries: List[Tuple[str, str, int, float, str]] = []
        self.horizon_log: List[Tuple[float, str, str, int, int]] = []

        # -- join state (message identity across hooks) ------------------
        self._open_pub: Dict[Key, int] = {}
        # id(KnowledgeMessage) -> (span_id, msg ref, send_info)
        self._pending_transit: Dict[int, Tuple[int, Any, Tuple]] = {}
        # id(KnowledgeMessage) -> (t_raw, span_id or None, send_info or None)
        self._arrived: Dict[int, Tuple[float, Optional[int], Optional[Tuple]]] = {}
        self._open_flush_timers: Dict[Tuple[str, str, str], int] = {}
        self._last_flush: Optional[Tuple[str, int]] = None
        self._last_ingest: Optional[Tuple[str, int]] = None
        self._last_subend_nack: Optional[Tuple[str, int]] = None
        self._nack_send_by_msg: Dict[int, Tuple[int, Any]] = {}
        self._nack_scope: Optional[int] = None
        self._open_deliver: Dict[Tuple[str, str, int], int] = {}
        self._open_count = 0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def install(self) -> "CausalTracer":
        if self._installed:
            return self
        self._installed = True
        hub = self.obs.lifecycle if self.obs is not None else None
        if hub is None:
            raise ValueError("CausalTracer requires a system with system.obs")
        hub.attach(self)
        self.obs.causal = self
        return self

    # ------------------------------------------------------------------
    # span store
    # ------------------------------------------------------------------

    def _span(
        self,
        name: str,
        node: str,
        pubend: str,
        tick: Optional[int],
        t0: float,
        parent: Optional[int] = None,
        t1: Optional[float] = None,
        **attrs: Any,
    ) -> Span:
        span = Span(len(self.spans), parent, name, node, pubend, tick, t0, t1, attrs)
        self.spans.append(span)
        if t1 is None:
            self._open_count += 1
        if tick is not None:
            key = (pubend, tick)
            sids = self._by_key.get(key)
            if sids is None:
                self._by_key[key] = [span.sid]
            else:
                sids.append(span.sid)
        return span

    def _close(self, span: Span, t: float) -> None:
        if span.t1 is None:
            span.t1 = t
            self._open_count -= 1

    def _register(self, span: Span, pubend: str, tick: int) -> None:
        key = (pubend, tick)
        sids = self._by_key.get(key)
        if sids is None:
            self._by_key[key] = [span.sid]
        elif span.sid not in sids:
            sids.append(span.sid)

    def open_span_count(self) -> int:
        return self._open_count

    def __len__(self) -> int:
        return len(self.spans)

    # ------------------------------------------------------------------
    # hub hooks
    # ------------------------------------------------------------------

    def published(self, t, node, pubend, tick):
        key = (pubend, tick)
        self.pubs[key] = _Pub(t, node)
        self._open_pub[key] = self._span("publish", node, pubend, tick, t).sid

    def committed(self, t, node, pubend, tick):
        key = (pubend, tick)
        pub = self.pubs.get(key)
        if pub is not None:
            pub.t_commit = t
        sid = self._open_pub.pop(key, None)
        if sid is not None:
            self._close(self.spans[sid], t)

    def message_arrived(self, t, node, src, message):
        payload = getattr(message, "payload", message)
        mid = id(payload)
        pending = self._pending_transit.pop(mid, None)
        if pending is not None:
            # The transit span stays open until the engine ingests the
            # message; its close (knowledge_ingested) covers wire + CPU
            # queue + istream accumulate as one hop record.
            self._arrived[mid] = (t, pending[0], pending[2])
        else:
            self._arrived[mid] = (t, None, None)

    def knowledge_ingested(self, t, node, src, message, relay=False):
        info = self._arrived.pop(id(message), None)
        t_raw, transit_sid, send_info = info if info is not None else (t, None, None)
        pubend = message.pubend
        data_list = message.data
        if transit_sid is not None:
            # Remote hop: the transit span *is* the hop record — it was
            # registered for every data tick at send time, so closing it
            # here is all the span store needs.
            sid = transit_sid
            self._close(self.spans[sid], t)
            send_t, send_node, send_cell, _kind, retransmit = send_info
        else:
            # Local ingest right after commit: chain to the publish span.
            parent = None
            if data_list:
                pub = self.pubs.get((pubend, data_list[0].tick))
                if pub is not None and pub.node == node:
                    sids = self._by_key.get((pubend, data_list[0].tick), ())
                    parent = sids[0] if sids else None
            span = self._span(
                "ingest",
                node,
                pubend,
                data_list[0].tick if data_list else None,
                t,
                parent=parent,
                t1=t,
                src=src,
                d=len(data_list),
                relay=relay,
            )
            sid = span.sid
            for i, data in enumerate(data_list):
                if i:  # data[0] is registered by _span above
                    self._register(span, pubend, data.tick)
            send_t = send_node = send_cell = None
            retransmit = bool(getattr(message, "retransmit", False))
        arrivals = self.arrivals
        for data in data_list:
            akey = (node, pubend, data.tick)
            if akey not in arrivals:
                arrivals[akey] = _Arrival(
                    t_raw, t, src, send_t, send_node, send_cell, retransmit, sid
                )
        self._last_ingest = (node, sid)

    def knowledge_sent(self, t, node, dst, cell, message, kind, sideways=False):
        parent = None
        if kind == "retransmit" and self._nack_scope is not None:
            parent = self._nack_scope
        elif kind == "flush" and self._last_flush is not None:
            fnode, fsid = self._last_flush
            if fnode == node:
                parent = fsid
        if parent is None and self._last_ingest is not None:
            inode, isid = self._last_ingest
            if inode == node:
                parent = isid
        if parent is None and message.data:
            key = (message.pubend, message.data[0].tick)
            pub = self.pubs.get(key)
            if pub is not None and pub.node == node:
                sids = self._by_key.get(key, ())
                parent = sids[0] if sids else None
        data_list = message.data
        span = self._span(
            "transit",
            node,
            message.pubend,
            data_list[0].tick if data_list else None,
            t,
            parent=parent,
            dst=dst,
            cell=cell,
            kind=kind,
            d=len(data_list),
            sideways=sideways,
        )
        retransmit = bool(getattr(message, "retransmit", False))
        send_times = self.send_times
        for i, data in enumerate(data_list):
            if i:  # data[0] is registered by _span above
                self._register(span, message.pubend, data.tick)
            skey = (node, message.pubend, data.tick)
            sends = send_times.get(skey)
            if sends is None:
                send_times[skey] = [(t, retransmit)]
            else:
                sends.append((t, retransmit))
        # Keep the message reference so id() cannot be recycled while the
        # transit is in flight (dropped messages pin their record forever,
        # bounded by total sends).
        self._pending_transit[id(message)] = (
            span.sid,
            message,
            (t, node, cell, kind, retransmit),
        )

    def flush_deferred(self, t, node, pubend, cell, ticks, armed, delay):
        tkey = (node, pubend, cell)
        sid = self._open_flush_timers.get(tkey)
        if armed or sid is None:
            span = self._span(
                "flush_timer",
                node,
                pubend,
                ticks[0] if ticks else None,
                t,
                delay=delay,
                cell=cell,
            )
            self._open_flush_timers[tkey] = sid = span.sid
        span = self.spans[sid]
        span.attrs["ticks"] = span.attrs.get("ticks", 0) + len(ticks)
        for tick in ticks:
            self._register(span, pubend, tick)
            self.flush_windows.setdefault((node, pubend, cell, tick), [t, None])

    def knowledge_flushed(self, t, node, pubend, cell, ticks, sent):
        sid = self._open_flush_timers.pop((node, pubend, cell), None)
        if sid is not None:
            span = self.spans[sid]
            span.attrs["sent"] = sent
            self._close(span, t)
            self._last_flush = (node, sid) if sent else None
        for tick in ticks:
            window = self.flush_windows.get((node, pubend, cell, tick))
            if window is not None and window[1] is None:
                window[1] = t

    def subend_nack(self, t, node, pubend, ranges, attempt):
        span = self._span(
            "nack",
            node,
            pubend,
            None,
            t,
            t1=t,
            ticks=sum(r.stop - r.start for r in ranges),
            attempt=attempt,
        )
        self._range_spans.append(
            (span.sid, pubend, tuple((r.start, r.stop) for r in ranges))
        )
        self._last_subend_nack = (node, span.sid)

    def nack_sent(self, t, node, pubend, ranges, message):
        parent = None
        if self._last_subend_nack is not None:
            nnode, nsid = self._last_subend_nack
            if nnode == node:
                parent = nsid
        if parent is None and self._nack_scope is not None:
            # Escalation: this broker forwards curiosity it cannot satisfy.
            parent = self._nack_scope
        span = self._span(
            "nack_send",
            node,
            pubend,
            None,
            t,
            parent=parent,
            t1=t,
            ticks=sum(r.stop - r.start for r in ranges),
        )
        self._range_spans.append(
            (span.sid, pubend, tuple((r.start, r.stop) for r in ranges))
        )
        self._nack_send_by_msg[id(message)] = (span.sid, message)

    def nack_received(self, t, node, src, message):
        sent = self._nack_send_by_msg.get(id(message))
        span = self._span(
            "nack_handle",
            node,
            message.pubend,
            None,
            t,
            parent=sent[0] if sent is not None else None,
            src=src,
            ticks=message.tick_count(),
        )
        self._range_spans.append(
            (
                span.sid,
                message.pubend,
                tuple((r.start, r.stop) for r in message.ranges),
            )
        )
        self._nack_scope = span.sid

    def nack_done(self, t, node):
        if self._nack_scope is not None:
            self._close(self.spans[self._nack_scope], t)
            self._nack_scope = None

    def client_write(self, t, node, subscriber, pubend, tick, eta):
        arrival = self.arrivals.get((node, pubend, tick))
        span = self._span(
            "deliver",
            node,
            pubend,
            tick,
            t,
            parent=arrival.span if arrival is not None else None,
            subscriber=subscriber,
            eta=round(eta, 9),
        )
        self._open_deliver[(subscriber, pubend, tick)] = span.sid
        self.client_writes.setdefault((subscriber, pubend, tick), (t, node))

    def delivered(self, t, node, subscriber, pubend, tick):
        sid = self._open_deliver.pop((subscriber, pubend, tick), None)
        if sid is not None:
            self._close(self.spans[sid], t)
        self.deliveries.append((subscriber, pubend, tick, t, node))

    def silence_emitted(self, t, node, pubend, up_to):
        self._span("silence", node, pubend, None, t, t1=t, up_to=up_to)

    def horizon_advanced(self, t, node, pubend, old, new):
        self.horizon_log.append((t, node, pubend, old, new))

    def fault(self, t, kind, target):
        span = self._span("fault", target, "", None, t, t1=t, kind=kind)
        self._fault_spans.append(span.sid)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def spans_for(self, pubend: str, tick: int) -> List[Span]:
        """Every span touching ``(pubend, tick)``: direct registrations,
        nack spans whose ranges contain the tick, their causal ancestors,
        and fault spans (context)."""
        sids = set(self._by_key.get((pubend, tick), ()))
        for sid, span_pubend, ranges in self._range_spans:
            if span_pubend == pubend and any(
                start <= tick < stop for start, stop in ranges
            ):
                sids.add(sid)
        sids.update(self._fault_spans)
        # Close over causal ancestors so every parent link renders.
        frontier = list(sids)
        while frontier:
            parent = self.spans[frontier.pop()].parent
            if parent is not None and parent not in sids:
                sids.add(parent)
                frontier.append(parent)
        return sorted(
            (self.spans[sid] for sid in sids), key=lambda s: (s.t0, s.sid)
        )

    def render_timeline(self, pubend: str, tick: int, header: str = "") -> str:
        """A byte-stable, indented causal timeline for one message."""
        spans = self.spans_for(pubend, tick)
        included = {span.sid for span in spans}
        depth: Dict[int, int] = {}
        for span in spans:  # (t0, sid) order => parents precede children
            if span.parent is not None and span.parent in depth:
                depth[span.sid] = depth[span.parent] + 1
            else:
                depth[span.sid] = 0
        lines = [f"causal timeline for ({pubend}, {tick})"]
        if header:
            lines.append(header)
        lines.append(f"{'t0 (s)':>12}  {'dur (ms)':>10}  span")
        for span in spans:
            dur = span.duration()
            dur_text = "open" if dur is None else f"{dur * 1e3:.3f}"
            parts = " ".join(
                f"{k}={v}" for k, v in sorted(span.attrs.items()) if v not in (None, "")
            )
            indent = "  " * depth[span.sid]
            target = f" ({span.pubend},{span.tick})" if span.tick is not None else ""
            lines.append(
                f"{span.t0:12.6f}  {dur_text:>10}  {indent}{span.name}"
                f" @{span.node}{target} {parts}".rstrip()
            )
        return "\n".join(lines) + "\n"

    # ------------------------------------------------------------------
    # Chrome trace / Perfetto export
    # ------------------------------------------------------------------

    def chrome_trace(self) -> Dict[str, Any]:
        """The span store as a Chrome trace-event object: one process per
        broker, one thread lane per pubend, flow arrows for cross-node
        and batching/nack causal links."""
        end = self.system.scheduler.now
        pids: Dict[str, int] = {}
        tids: Dict[Tuple[str, str], int] = {}
        events: List[Dict[str, Any]] = []

        def pid_of(node: str) -> int:
            if node not in pids:
                pids[node] = len(pids) + 1
                events.append(
                    {
                        "ph": "M",
                        "name": "process_name",
                        "pid": pids[node],
                        "tid": 0,
                        "args": {"name": node or "system"},
                    }
                )
            return pids[node]

        def tid_of(node: str, pubend: str) -> int:
            key = (node, pubend)
            if key not in tids:
                tids[key] = len([k for k in tids if k[0] == node]) + 1
                events.append(
                    {
                        "ph": "M",
                        "name": "thread_name",
                        "pid": pid_of(node),
                        "tid": tids[key],
                        "args": {"name": pubend or "control"},
                    }
                )
            return tids[key]

        def us(t: float) -> float:
            return round(t * 1e6, 3)

        for span in self.spans:
            pid = pid_of(span.node)
            tid = tid_of(span.node, span.pubend)
            t1 = span.t1 if span.t1 is not None else end
            args = {k: v for k, v in span.attrs.items() if v not in (None, "")}
            if span.tick is not None:
                args["tick"] = span.tick
            events.append(
                {
                    "ph": "X",
                    "name": span.name,
                    "cat": "lifecycle",
                    "pid": pid,
                    "tid": tid,
                    "ts": us(span.t0),
                    "dur": max(us(t1) - us(span.t0), 1.0),
                    "args": args,
                }
            )
            if span.parent is not None:
                parent = self.spans[span.parent]
                anchor = min(
                    parent.t1 if parent.t1 is not None else span.t0, span.t0
                )
                events.append(
                    {
                        "ph": "s",
                        "id": span.sid,
                        "name": "cause",
                        "cat": "causal",
                        "pid": pid_of(parent.node),
                        "tid": tid_of(parent.node, parent.pubend),
                        "ts": us(max(anchor, parent.t0)),
                    }
                )
                events.append(
                    {
                        "ph": "f",
                        "bp": "e",
                        "id": span.sid,
                        "name": "cause",
                        "cat": "causal",
                        "pid": pid,
                        "tid": tid,
                        "ts": us(span.t0),
                    }
                )
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def export_chrome(self, out: Any) -> int:
        """Write the Chrome trace JSON to ``out`` (path or file object);
        returns the number of trace events written."""
        trace = self.chrome_trace()
        if hasattr(out, "write"):
            json.dump(trace, out)
        else:
            with open(out, "w") as handle:
                json.dump(trace, handle)
        return len(trace["traceEvents"])
