"""Online anomaly detectors for a running simulation.

A :class:`DetectorSet` arms one periodic sweep on the system scheduler
and watches for the protocol pathologies the paper's recovery machinery
is supposed to prevent:

* **doubt-horizon stall** — a subend's delivered horizon is behind the
  publisher's log but has not advanced for ``stall_after`` seconds
  (recovery stopped converging; cf. the self-stabilization literature);
* **retransmission storm** — the fleet-wide retransmission rate over the
  last sweep window exceeds ``storm_rate`` per second (curiosity is
  being answered but never satisfied);
* **silence violation** — a hosted pubend has emitted nothing (data or
  silence) for more than ``silence_factor`` times its silence interval
  while its broker is alive (lazy silence is broken, so downstream
  subends cannot distinguish an idle stream from a dead one);
* **corruption storm** — the fleet-wide rate of *detected* integrity
  faults (quarantined log records, checksum-rejected frames, failed log
  appends) over the last sweep window exceeds ``corruption_rate`` per
  second.  Each individual fault is healed by design — quarantine plus
  replay, reconnect plus retransmission — but a sustained rate means a
  disk or link is actively dying and an operator should intervene
  before healing capacity is outrun.

Findings are structured :class:`Finding` records pushed into
``system.obs`` (:meth:`~repro.obs.observability.Observability.record_finding`),
which counts them into ``repro_detector_findings_total`` by detector;
the sweep also maintains gauges so exported snapshots show the current
stall age / retransmission rate even before a threshold trips.

Detectors are read-only over engine state: they never mutate protocol
state, so an armed DetectorSet changes the scheduler's event count but
not a run's behaviour or result digest.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Tuple

from .lifecycle import LifecycleListener

__all__ = ["Finding", "DetectorSet"]

DETECTORS = (
    "horizon_stall",
    "retransmission_storm",
    "silence_violation",
    "corruption_storm",
)

#: Counter families summed by the corruption-storm sweep: every way the
#: integrity layer *detects* (and heals) a corruption event.
CORRUPTION_COUNTERS = (
    "log_records_quarantined",
    "log_append_errors",
    "aio_frames_rejected_crc",
)


@dataclass(frozen=True)
class Finding:
    """One structured anomaly observation."""

    t: float
    detector: str
    node: str
    pubend: str
    message: str
    data: Dict[str, Any] = field(default_factory=dict)

    def render(self) -> str:
        return f"{self.t:10.4f}  {self.detector:<22} {self.node:<6} {self.message}"


class DetectorSet(LifecycleListener):
    """Periodic anomaly sweeps over a built system."""

    def __init__(
        self,
        system,
        interval: float = 0.25,
        stall_after: float = 2.0,
        storm_rate: float = 200.0,
        silence_factor: float = 3.0,
        corruption_rate: float = 5.0,
    ):
        self.system = system
        self.obs = getattr(system, "obs", None)
        self.interval = interval
        self.stall_after = stall_after
        self.storm_rate = storm_rate
        self.silence_factor = silence_factor
        self.corruption_rate = corruption_rate
        self.findings: List[Finding] = []
        self._installed = False
        # (broker, pubend) -> (last seen delivered horizon, time it moved,
        #  finding already raised for this stall episode)
        self._horizons: Dict[Tuple[str, str], List[Any]] = {}
        self._retransmits_window = 0
        self._storm_active = False
        self._silence_flagged: Dict[str, bool] = {}
        self._corruption_seen = 0.0
        self._corruption_active = False

    # ------------------------------------------------------------------

    def install(self) -> "DetectorSet":
        if self._installed:
            return self
        self._installed = True
        if self.obs is not None:
            self.obs.lifecycle.attach(self)
            # Pre-create the finding counter families with every detector
            # label so exported snapshots have a stable schema even when
            # nothing anomalous happened.
            for detector in DETECTORS:
                self.obs.counter(
                    "repro_detector_findings_total",
                    "Anomaly findings raised by online detectors, by detector.",
                    detector=detector,
                )
            self.obs.gauge(
                "repro_detector_horizon_stall_seconds",
                "Age of the oldest currently stalled subend doubt horizon",
            ).set(0.0)
            self.obs.gauge(
                "repro_detector_retransmission_rate",
                "Fleet-wide retransmissions per second over the last sweep window",
            ).set(0.0)
            self.obs.gauge(
                "repro_detector_silence_age_seconds",
                "Age of the most overdue hosted pubend emission",
            ).set(0.0)
            self.obs.gauge(
                "repro_detector_corruption_rate",
                "Detected integrity faults per second over the last sweep "
                "window (quarantined records, crc rejects, append errors)",
            ).set(0.0)
        self._arm()
        return self

    def _arm(self) -> None:
        self.system.scheduler.call_later(self.interval, self._sweep)

    # -- lifecycle hooks (retransmission accounting) ---------------------

    def knowledge_sent(self, t, node, dst, cell, message, kind, sideways=False):
        if kind == "retransmit":
            self._retransmits_window += 1

    # ------------------------------------------------------------------

    def _emit(self, finding: Finding) -> None:
        self.findings.append(finding)
        if self.obs is not None:
            self.obs.record_finding(finding)

    def _sweep(self) -> None:
        now = self.system.scheduler.now
        self._check_horizons(now)
        self._check_storm(now)
        self._check_silence(now)
        self._check_corruption(now)
        self._arm()

    def _check_horizons(self, now: float) -> None:
        worst = 0.0
        for broker_id, broker in sorted(self.system.brokers.items()):
            engine = getattr(broker, "engine", None)
            if engine is None or engine.subend is None:
                continue
            for pubend, info in sorted(engine.stream_state().items()):
                sub = info.get("subend")
                if sub is None:
                    continue
                horizon = sub["delivered_horizon"]
                istream_max = info["istream"]["horizon"]
                key = (broker_id, pubend)
                state = self._horizons.get(key)
                if state is None or state[0] != horizon:
                    self._horizons[key] = [horizon, now, False]
                    continue
                in_doubt = istream_max > horizon
                age = now - state[1]
                if in_doubt:
                    worst = max(worst, age)
                if in_doubt and age >= self.stall_after and not state[2]:
                    state[2] = True
                    self._emit(
                        Finding(
                            now,
                            "horizon_stall",
                            broker_id,
                            pubend,
                            f"delivered horizon stuck at {horizon} for "
                            f"{age:.2f}s while istream has ticks up to "
                            f"{istream_max}",
                            {"horizon": horizon, "istream_max": istream_max,
                             "age": age},
                        )
                    )
        if self.obs is not None:
            self.obs.gauge("repro_detector_horizon_stall_seconds").set(worst)

    def _check_storm(self, now: float) -> None:
        rate = self._retransmits_window / self.interval
        self._retransmits_window = 0
        if self.obs is not None:
            self.obs.gauge("repro_detector_retransmission_rate").set(rate)
        if rate >= self.storm_rate:
            if not self._storm_active:
                self._storm_active = True
                self._emit(
                    Finding(
                        now,
                        "retransmission_storm",
                        "*",
                        "*",
                        f"{rate:.0f} retransmissions/s across the fleet "
                        f"(threshold {self.storm_rate:.0f}/s)",
                        {"rate": rate},
                    )
                )
        else:
            self._storm_active = False

    def _check_corruption(self, now: float) -> None:
        instruments = getattr(self.obs, "instruments", None)
        if instruments is None:
            return
        total = sum(instruments.total(name) for name in CORRUPTION_COUNTERS)
        delta = max(0.0, total - self._corruption_seen)
        self._corruption_seen = total
        rate = delta / self.interval
        self.obs.gauge("repro_detector_corruption_rate").set(rate)
        if rate >= self.corruption_rate:
            if not self._corruption_active:
                self._corruption_active = True
                self._emit(
                    Finding(
                        now,
                        "corruption_storm",
                        "*",
                        "*",
                        f"{rate:.0f} detected integrity faults/s "
                        f"(quarantines + crc rejects + append errors; "
                        f"threshold {self.corruption_rate:.0f}/s)",
                        {"rate": rate, "total": total},
                    )
                )
        else:
            self._corruption_active = False

    def _check_silence(self, now: float) -> None:
        worst = 0.0
        limit_factor = self.silence_factor
        for broker_id, broker in sorted(self.system.brokers.items()):
            engine = getattr(broker, "engine", None)
            if engine is None:
                continue
            for pubend_id, pubend in sorted(engine.pubends.items()):
                age = now - pubend.last_emission
                worst = max(worst, age)
                limit = limit_factor * pubend.silence_interval
                if age > limit:
                    if not self._silence_flagged.get(pubend_id):
                        self._silence_flagged[pubend_id] = True
                        self._emit(
                            Finding(
                                now,
                                "silence_violation",
                                broker_id,
                                pubend_id,
                                f"no emission (data or silence) for "
                                f"{age:.2f}s > {limit:.2f}s",
                                {"age": age, "limit": limit},
                            )
                        )
                else:
                    self._silence_flagged[pubend_id] = False
        if self.obs is not None:
            self.obs.gauge("repro_detector_silence_age_seconds").set(worst)
