"""Lifecycle hook hub: the protocol's per-message event bus.

The broker engine, the simulated broker host, the subend manager, and the
fault injector report the *semantic* moments of a publication's life —
publish, log commit, hop ingest, flush deferral, nack, retransmission,
client write, delivery — through one :class:`LifecycleHub` owned by the
system's :class:`~repro.obs.observability.Observability`.

The hub is a dumb fan-out with no listeners by default; every call site
guards with ``hub.listeners`` so an unobserved system pays one attribute
load and a falsy check per event.  Listeners (the
:class:`~repro.obs.causal.CausalTracer`, the flat tracer's flush adapter,
:class:`~repro.obs.detectors.DetectorSet`) subclass
:class:`LifecycleListener` and override what they care about.

This module deliberately imports nothing from the broker or core packages
so :mod:`repro.obs.observability` can own a hub without an import cycle;
message arguments are duck-typed protocol objects.
"""

from __future__ import annotations

from collections import Counter
from typing import Any, List, Sequence, Tuple

__all__ = ["LifecycleHub", "LifecycleListener", "LifecycleRecorder"]


class LifecycleListener:
    """No-op base: override the hooks you need.

    Every hook's first argument ``t`` is the simulated time at which the
    event happened; ``node`` is the physical broker id.
    """

    def published(self, t: float, node: str, pubend: str, tick: int) -> None:
        """A client publication was appended to the pubend log."""

    def committed(self, t: float, node: str, pubend: str, tick: int) -> None:
        """The log append committed; the message is now *published*."""

    def message_arrived(self, t: float, node: str, src: str, message: Any) -> None:
        """A broker-to-broker envelope reached a host (before CPU queue)."""

    def knowledge_ingested(
        self, t: float, node: str, src: str, message: Any, relay: bool = False
    ) -> None:
        """The engine accumulated a knowledge message into its streams."""

    def knowledge_sent(
        self,
        t: float,
        node: str,
        dst: str,
        cell: str,
        message: Any,
        kind: str,
        sideways: bool = False,
    ) -> None:
        """A knowledge message went on the wire.  ``kind`` is one of
        ``first`` / ``flush`` / ``silence`` / ``retransmit`` / ``relay``."""

    def flush_deferred(
        self,
        t: float,
        node: str,
        pubend: str,
        cell: str,
        ticks: Sequence[int],
        armed: bool,
        delay: float,
    ) -> None:
        """Batched propagation folded ticks into an ostream's pending
        flush; ``armed`` is True when this call scheduled the timer."""

    def knowledge_flushed(
        self,
        t: float,
        node: str,
        pubend: str,
        cell: str,
        ticks: Sequence[int],
        sent: bool,
    ) -> None:
        """A flush timer fired.  ``sent`` is False when the coalesced
        message turned out empty (the flush was effectively cancelled)."""

    def subend_nack(
        self,
        t: float,
        node: str,
        pubend: str,
        ranges: Sequence[Any],
        attempt: int,
    ) -> None:
        """A local subend asked for Q ticks (first send or NRT repeat)."""

    def nack_sent(
        self, t: float, node: str, pubend: str, ranges: Sequence[Any], message: Any
    ) -> None:
        """This broker put a consolidated nack message on the wire."""

    def nack_received(self, t: float, node: str, src: str, message: Any) -> None:
        """A downstream nack arrived; retransmissions sent before the
        matching :meth:`nack_done` are caused by it."""

    def nack_done(self, t: float, node: str) -> None:
        """The engine finished handling the last received nack."""

    def client_write(
        self,
        t: float,
        node: str,
        subscriber: str,
        pubend: str,
        tick: int,
        eta: float,
    ) -> None:
        """A delivery was queued on a subscriber connection; the client
        observes it ``eta`` seconds later."""

    def delivered(
        self, t: float, node: str, subscriber: str, pubend: str, tick: int
    ) -> None:
        """The subscriber client observed the delivery."""

    def silence_emitted(self, t: float, node: str, pubend: str, up_to: int) -> None:
        """A hosted pubend generated an idle-silence message."""

    def horizon_advanced(
        self, t: float, node: str, pubend: str, old: int, new: int
    ) -> None:
        """A subend's publisher-order delivery horizon moved forward."""

    def fault(self, t: float, kind: str, target: str) -> None:
        """A fault injector applied a fault."""


class LifecycleRecorder(LifecycleListener):
    """Order-insensitive multiset record of a run's semantic events.

    The conformance harness (:mod:`repro.check.conformance`) attaches one
    per backend and compares the projections that must agree across the
    simulator and the asyncio runtime regardless of wall-clock
    interleaving: how many times each publication *committed* and how
    many times each (subscriber, publication) *delivery* fired.  Counters
    rather than sets, so a duplicated commit or delivery — which the
    protocol forbids — shows up as a count above one instead of
    vanishing into set semantics.  Retransmission traffic and injected
    faults are tallied as context for divergence reports.
    """

    def __init__(self) -> None:
        #: (pubend, tick) -> times the log append committed.
        self.committed_events: Counter = Counter()
        #: (subscriber, pubend, tick) -> times the client saw delivery.
        self.delivered_events: Counter = Counter()
        self.retransmits_sent = 0
        #: (kind, target) fault applications, in observation order.
        self.faults: List[Tuple[str, str]] = []

    def committed(self, t: float, node: str, pubend: str, tick: int) -> None:
        self.committed_events[(pubend, tick)] += 1

    def delivered(
        self, t: float, node: str, subscriber: str, pubend: str, tick: int
    ) -> None:
        self.delivered_events[(subscriber, pubend, tick)] += 1

    def knowledge_sent(
        self,
        t: float,
        node: str,
        dst: str,
        cell: str,
        message: Any,
        kind: str,
        sideways: bool = False,
    ) -> None:
        if kind == "retransmit":
            self.retransmits_sent += 1

    def fault(self, t: float, kind: str, target: str) -> None:
        self.faults.append((kind, target))


_HOOKS = (
    "published",
    "committed",
    "message_arrived",
    "knowledge_ingested",
    "knowledge_sent",
    "flush_deferred",
    "knowledge_flushed",
    "subend_nack",
    "nack_sent",
    "nack_received",
    "nack_done",
    "client_write",
    "delivered",
    "silence_emitted",
    "horizon_advanced",
    "fault",
)


def _make_fanout(methods: Sequence[Any]):
    def fanout(*args: Any, **kwargs: Any) -> None:
        for method in methods:
            method(*args, **kwargs)

    return fanout


class LifecycleHub(LifecycleListener):
    """Fan-out of lifecycle events to attached listeners.

    Call sites guard with ``if hub.listeners:`` so the unobserved hot
    path costs nothing but the check.  Per hook, the hub binds an
    *instance* attribute shadowing the inherited no-op: the listener's
    bound method directly when exactly one listener overrides the hook
    (no dispatch frame at all — the common case is a single
    :class:`~repro.obs.causal.CausalTracer`), a fan-out closure when
    several do, and the inherited no-op when none does.
    """

    def __init__(self) -> None:
        self.listeners: List[LifecycleListener] = []

    @property
    def active(self) -> bool:
        return bool(self.listeners)

    def attach(self, listener: LifecycleListener) -> LifecycleListener:
        if listener not in self.listeners:
            self.listeners.append(listener)
            self._rebuild()
        return listener

    def detach(self, listener: LifecycleListener) -> None:
        if listener in self.listeners:
            self.listeners.remove(listener)
            self._rebuild()

    def _rebuild(self) -> None:
        for name in _HOOKS:
            base = getattr(LifecycleListener, name)
            methods = [
                getattr(listener, name)
                for listener in self.listeners
                if getattr(type(listener), name, base) is not base
            ]
            if len(methods) == 1:
                setattr(self, name, methods[0])
            elif methods:
                setattr(self, name, _make_fanout(methods))
            elif name in self.__dict__:
                delattr(self, name)  # fall back to the inherited no-op
