"""The unified observation plane of one running system.

One :class:`Observability` object per system (built by
:meth:`repro.topology.Topology.build`, exposed as ``system.obs``) owns
every measurement channel the evaluation uses:

* **instruments** — the counter/gauge/histogram registry threaded
  through the broker engine, pubends, subends, and simulated links;
* **hub** — the legacy :class:`~repro.obs.hub.MetricsHub` series
  recorders (latency and nack time series, the figures' raw data), now a
  peer instead of a hand-wired singleton;
* **accountants** — every broker's :class:`~repro.metrics.cpu.CpuAccountant`,
  registered at construction, so CPU busy time appears in snapshots next
  to the protocol counters and Figure-4 numbers agree with the exporter;
* **tracers** — any :class:`~repro.obs.trace.Tracer` attached to the
  system, reported as trace-volume gauges.

Exporters (:func:`prometheus` / :func:`json_lines`) synchronize the
derived gauges and render the whole registry; nothing else in the system
needs to know how many channels exist.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from . import exporters
from .hub import MetricsHub
from .lifecycle import LifecycleHub
from .instruments import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    Instruments,
    ScopedTimer,
)

__all__ = ["Observability"]


class Observability:
    """Registry-of-registries: one object owning a system's telemetry."""

    def __init__(self, hub: Optional[MetricsHub] = None):
        self.instruments = Instruments()
        self.hub = hub if hub is not None else MetricsHub()
        self.accountants: Dict[str, Any] = {}
        self.tracers: List[Any] = []
        #: Structured fault events pushed by
        #: :class:`~repro.faults.injector.FaultInjector` (application order).
        self.fault_events: List[Any] = []
        #: Per-message lifecycle event bus.  Brokers, subends, and the
        #: fault injector publish semantic protocol moments here; causal
        #: tracers and anomaly detectors subscribe.  No listeners by
        #: default, so the unobserved hot path costs one truthiness check.
        self.lifecycle = LifecycleHub()
        #: The system's :class:`~repro.obs.causal.CausalTracer`, when one
        #: is installed (set by the tracer itself).
        self.causal: Optional[Any] = None
        #: Structured anomaly findings pushed by
        #: :class:`~repro.obs.detectors.DetectorSet` (detection order).
        self.findings: List[Any] = []

    # -- facade over the instrument registry ----------------------------

    def counter(self, name: str, help: str = "", **labels: Any) -> Counter:
        return self.instruments.counter(name, help, **labels)

    def gauge(self, name: str, help: str = "", **labels: Any) -> Gauge:
        return self.instruments.gauge(name, help, **labels)

    def histogram(
        self,
        name: str,
        help: str = "",
        boundaries: Sequence[float] = DEFAULT_BUCKETS,
        **labels: Any,
    ) -> Histogram:
        return self.instruments.histogram(name, help, boundaries, **labels)

    def timer(
        self,
        name: str,
        accountant: Any = None,
        cost: Optional[float] = None,
        category: str = "misc",
        **labels: Any,
    ) -> ScopedTimer:
        """A :class:`ScopedTimer` over the named histogram, optionally
        charging a CPU accountant so the cost model stays in step."""
        histogram = self.instruments.histogram(name, **labels)
        return ScopedTimer(
            histogram, accountant=accountant, cost=cost, category=category
        )

    # -- peer registration ----------------------------------------------

    def register_accountant(self, node_id: str, accountant: Any) -> None:
        """Adopt a broker's CPU accountant (idempotent per node)."""
        self.accountants[node_id] = accountant

    def attach_tracer(self, tracer: Any) -> None:
        if tracer not in self.tracers:
            self.tracers.append(tracer)

    def record_fault_event(self, event: Any) -> None:
        """Adopt one injected-fault event (structured; see
        :class:`~repro.faults.injector.FaultEvent`).

        Counts into ``repro_faults_injected_total`` labelled by fault
        kind, so fault activity exports next to the protocol counters it
        perturbs, and keeps the structured record in
        :attr:`fault_events` for scripted analysis.
        """
        self.fault_events.append(event)
        self.counter(
            "repro_faults_injected_total",
            "Faults applied to this system by a FaultInjector, by kind.",
            kind=getattr(event, "kind", "unknown"),
        ).inc()

    def record_finding(self, finding: Any) -> None:
        """Adopt one structured anomaly finding (see
        :class:`~repro.obs.detectors.Finding`).

        Counts into ``repro_detector_findings_total`` labelled by
        detector, and keeps the structured record in :attr:`findings`
        so scripted analysis (and the fuzzer's failure dumps) can read
        what the online detectors saw.
        """
        self.findings.append(finding)
        self.counter(
            "repro_detector_findings_total",
            "Anomaly findings raised by online detectors, by detector.",
            detector=getattr(finding, "detector", "unknown"),
        ).inc()

    # -- derived metrics -------------------------------------------------

    def _sync_derived(self) -> None:
        """Refresh gauges computed from registered peers at export time."""
        for node_id, accountant in sorted(self.accountants.items()):
            self.gauge(
                "repro_broker_cpu_busy_seconds",
                "Modelled CPU busy time accumulated by the broker's cost accountant",
                broker=node_id,
            ).set(accountant.busy_time)
            self.gauge(
                "repro_broker_cpu_queue_delay_seconds",
                "Current backlog of the broker's single-server CPU work queue",
                broker=node_id,
            ).set(accountant.queue_delay())
        if self.tracers:
            self.gauge(
                "repro_trace_events",
                "Events recorded by tracers attached to this system",
            ).set(float(sum(len(t) for t in self.tracers)))
        if self.causal is not None:
            self.gauge(
                "repro_causal_spans",
                "Lifecycle spans recorded by the causal tracer",
            ).set(float(len(self.causal.spans)))
            self.gauge(
                "repro_causal_open_spans",
                "Causal spans still open (in-flight protocol work)",
            ).set(float(self.causal.open_span_count()))
        hub = self.hub
        self.gauge(
            "repro_client_deliveries",
            "Deliveries recorded by subscriber clients (MetricsHub peer)",
        ).set(float(hub.latency.delivered))

    # -- export ----------------------------------------------------------

    def prometheus(self) -> str:
        """The full snapshot in Prometheus text exposition format."""
        self._sync_derived()
        return exporters.prometheus_text(self.instruments)

    def json_lines(self, out: Any = None) -> str:
        """The full snapshot as JSON lines (one instrument per line);
        also written to ``out`` when given."""
        self._sync_derived()
        return exporters.json_lines(self.instruments, out)

    def snapshot(self) -> List[Dict[str, Any]]:
        """The full snapshot as plain dicts."""
        self._sync_derived()
        return exporters.snapshot(self.instruments)
