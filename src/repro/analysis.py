"""Analysis and terminal rendering of experiment results.

The benchmark harness prints paper-style tables; this module adds the
pieces a user pokes at results with: time-series resampling, summary
statistics, ASCII sparklines/plots for quick terminal inspection, and CSV
export for real plotting tools.  Used by the CLI (``--dump``) and the
examples.
"""

from __future__ import annotations

import csv
import math
from typing import Dict, List, Optional, Sequence, TextIO, Tuple

__all__ = [
    "sparkline",
    "ascii_plot",
    "resample_max",
    "cumulative",
    "summarize",
    "write_series_csv",
]

#: (x, y) sample pairs.
Series = Sequence[Tuple[float, float]]

_BLOCKS = " .:-=+*#%@"


def sparkline(values: Sequence[float], width: int = 60) -> str:
    """A one-line intensity profile of a value sequence."""
    if not values:
        return ""
    lo, hi = min(values), max(values)
    span = (hi - lo) or 1.0
    step = max(len(values) // width, 1)
    out = []
    for i in range(0, len(values), step):
        level = int((values[i] - lo) / span * (len(_BLOCKS) - 1))
        out.append(_BLOCKS[min(level, len(_BLOCKS) - 1)])
    return "".join(out)


def resample_max(series: Series, bins: int) -> List[Tuple[float, float]]:
    """Downsample to ``bins`` equal-width x-buckets, keeping each bucket's
    maximum (peaks are the feature of interest in latency plots)."""
    if bins <= 0:
        raise ValueError("bins must be positive")
    points = sorted(series)
    if not points:
        return []
    x_lo, x_hi = points[0][0], points[-1][0]
    width = (x_hi - x_lo) / bins or 1.0
    out: List[Tuple[float, float]] = []
    index = 0
    for b in range(bins):
        lo = x_lo + b * width
        hi = x_lo + (b + 1) * width
        best: Optional[float] = None
        while index < len(points) and (points[index][0] < hi or b == bins - 1):
            if points[index][0] < lo:
                index += 1
                continue
            y = points[index][1]
            best = y if best is None else max(best, y)
            index += 1
        if best is not None:
            out.append((lo + width / 2, best))
    return out


def cumulative(series: Series) -> List[Tuple[float, float]]:
    """Running sum of y values in x order (the paper's nack-range plots)."""
    total = 0.0
    out = []
    for x, y in sorted(series):
        total += y
        out.append((x, total))
    return out


def ascii_plot(
    series: Series,
    width: int = 70,
    height: int = 12,
    title: str = "",
) -> str:
    """A multi-line terminal scatter of (x, y) points."""
    points = sorted(series)
    if not points:
        return f"{title}\n(no data)"
    xs = [x for x, __ in points]
    ys = [y for __, y in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0
    grid = [[" "] * width for __ in range(height)]
    for x, y in points:
        col = min(int((x - x_lo) / x_span * (width - 1)), width - 1)
        row = min(int((y - y_lo) / y_span * (height - 1)), height - 1)
        grid[height - 1 - row][col] = "*"
    lines = []
    if title:
        lines.append(title)
    lines.append(f"{y_hi:10.3f} ┤" + "".join(grid[0]))
    for row in grid[1:-1]:
        lines.append(" " * 10 + " │" + "".join(row))
    lines.append(f"{y_lo:10.3f} ┤" + "".join(grid[-1]))
    lines.append(" " * 12 + f"{x_lo:<10.2f}" + " " * max(width - 20, 0) + f"{x_hi:>10.2f}")
    return "\n".join(lines)


def summarize(values: Sequence[float]) -> Dict[str, float]:
    """min / median / mean / p99 / max of a value sequence."""
    if not values:
        raise ValueError("summarize of empty sequence")
    ordered = sorted(values)
    n = len(ordered)

    def pct(p: float) -> float:
        rank = p / 100.0 * (n - 1)
        lo = math.floor(rank)
        hi = math.ceil(rank)
        if lo == hi:
            return ordered[lo]
        w = rank - lo
        return ordered[lo] * (1 - w) + ordered[hi] * w

    return {
        "min": ordered[0],
        "median": pct(50),
        "mean": sum(ordered) / n,
        "p99": pct(99),
        "max": ordered[-1],
        "count": float(n),
    }


def write_series_csv(
    out: TextIO, named_series: Dict[str, Series], x_name: str = "t"
) -> int:
    """Write several (x, y) series as long-form CSV rows
    ``series,x,y`` — the friendliest shape for pandas/gnuplot.

    Returns the number of data rows written.
    """
    writer = csv.writer(out)
    writer.writerow(["series", x_name, "value"])
    rows = 0
    for name in sorted(named_series):
        for x, y in sorted(named_series[name]):
            writer.writerow([name, f"{x:.6f}", f"{y:.6f}"])
            rows += 1
    return rows
