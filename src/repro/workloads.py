"""Workload generators for experiments and examples.

The paper's workloads are simple (fixed-rate publishers, group-partitioned
subscribers); real content-based deployments are skewed and bursty.  This
module provides both, as attribute factories pluggable into
:class:`~repro.client.PublisherClient` / the experiment drivers, plus
subscription-population generators for matching benchmarks.

All generators are deterministic given their seed (they use their own
``random.Random``), so experiments stay reproducible.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Sequence

from .matching.ast import Predicate
from .matching.parser import parse

__all__ = [
    "group_partition",
    "zipf_symbols",
    "market_ticks",
    "bursty_rate",
    "subscription_population",
]

#: An attribute factory: sequence number -> event attributes.
AttributeFactory = Callable[[int], Dict[str, Any]]


def group_partition(n_groups: int) -> AttributeFactory:
    """The paper's overhead workload: round-robin ``group`` attribute.

    With subscriber *i* subscribing to ``group = i % n_groups``, each
    subscriber receives ``input_rate / n_groups`` messages per second
    regardless of total subscriber count.
    """
    if n_groups <= 0:
        raise ValueError("n_groups must be positive")

    def make(seq: int) -> Dict[str, Any]:
        return {"group": seq % n_groups}

    return make


def zipf_symbols(
    symbols: Sequence[str], s: float = 1.1, seed: int = 0
) -> AttributeFactory:
    """Zipf-skewed ``symbol`` attribute (realistic market feeds: a few
    hot symbols dominate)."""
    if not symbols:
        raise ValueError("symbols must be non-empty")
    rng = random.Random(seed)
    weights = [1.0 / (rank**s) for rank in range(1, len(symbols) + 1)]
    total = sum(weights)
    cumulative = []
    acc = 0.0
    for weight in weights:
        acc += weight / total
        cumulative.append(acc)

    def make(seq: int) -> Dict[str, Any]:
        u = rng.random()
        for index, bound in enumerate(cumulative):
            if u <= bound:
                return {"symbol": symbols[index]}
        return {"symbol": symbols[-1]}

    return make


def market_ticks(
    symbols: Sequence[str],
    base_price: float = 100.0,
    volatility: float = 0.01,
    seed: int = 0,
) -> AttributeFactory:
    """A random-walk trade feed: symbol, price, volume, side."""
    rng = random.Random(seed)
    prices = {symbol: base_price * (1 + rng.uniform(-0.2, 0.2)) for symbol in symbols}
    pick = zipf_symbols(symbols, seed=seed + 1)

    def make(seq: int) -> Dict[str, Any]:
        symbol = pick(seq)["symbol"]
        prices[symbol] *= math.exp(rng.gauss(0.0, volatility))
        return {
            "symbol": symbol,
            "price": round(prices[symbol], 2),
            "volume": rng.choice([100, 200, 500, 1000, 5000]),
            "side": rng.choice(["buy", "sell"]),
        }

    return make


def bursty_rate(
    base_rate: float,
    burst_rate: float,
    burst_every: float,
    burst_length: float,
) -> Callable[[float], float]:
    """A time-varying rate function: ``base_rate`` with periodic bursts.

    Returns ``rate(t)``; callers publishing with variable rate sample it
    per message to choose the next inter-publish gap.
    """
    if min(base_rate, burst_rate) <= 0:
        raise ValueError("rates must be positive")

    def rate(t: float) -> float:
        phase = t % burst_every
        return burst_rate if phase < burst_length else base_rate

    return rate


@dataclass(frozen=True)
class SubscriptionSpec:
    """One generated subscription."""

    sub_id: str
    predicate: Predicate


def subscription_population(
    n: int,
    symbols: Sequence[str],
    seed: int = 0,
    equality_fraction: float = 0.5,
    range_fraction: float = 0.3,
) -> List[SubscriptionSpec]:
    """A mixed population of subscriptions over a market-tick schema.

    ``equality_fraction`` get a pure symbol-equality predicate,
    ``range_fraction`` an equality plus a price range, and the remainder
    a three-term conjunction — the mix exercises the matcher's hash
    index, threshold lists, and counting simultaneously.
    """
    if not 0 <= equality_fraction + range_fraction <= 1:
        raise ValueError("fractions must sum to at most 1")
    rng = random.Random(seed)
    out: List[SubscriptionSpec] = []
    for i in range(n):
        symbol = rng.choice(list(symbols))
        roll = rng.random()
        if roll < equality_fraction:
            predicate = parse(f"symbol = '{symbol}'")
        elif roll < equality_fraction + range_fraction:
            lo = rng.uniform(50, 150)
            predicate = parse(f"symbol = '{symbol}' and price >= {lo:.2f}")
        else:
            lo = rng.uniform(50, 150)
            volume = rng.choice([200, 500, 1000])
            predicate = parse(
                f"symbol = '{symbol}' and price >= {lo:.2f} and volume >= {volume}"
            )
        out.append(SubscriptionSpec(f"sub{i}", predicate))
    return out
