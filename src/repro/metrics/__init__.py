"""Latency/nack measurement and the work-unit CPU model."""

from .cpu import CostModel, CpuAccountant
from .recorder import (
    LatencyRecorder,
    MetricsHub,
    NackRecorder,
    Sample,
    Series,
    median,
    percentile,
)
