"""Latency/nack measurement and the work-unit CPU model."""

from .cpu import CostModel, CpuAccountant
from .recorder import (
    LatencyRecorder,
    NackRecorder,
    Sample,
    Series,
    median,
    percentile,
)

__all__ = [
    "CostModel",
    "CpuAccountant",
    "LatencyRecorder",
    "MetricsHub",
    "NackRecorder",
    "Sample",
    "Series",
    "median",
    "percentile",
]


def __getattr__(name: str):
    # Deprecated: MetricsHub lives in repro.obs now.  The shim in
    # .recorder emits the DeprecationWarning; stay lazy here so plain
    # ``import repro.metrics`` never warns.
    if name == "MetricsHub":
        from . import recorder

        return recorder.MetricsHub
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
