"""Work-unit CPU cost model.

The paper measures broker CPU utilization on its AIX testbed (Figure 4).
We have no testbed; instead every broker action is charged to a per-broker
accountant using a calibrated cost table, and "utilization" is busy time
divided by elapsed time.  This is a documented substitution (DESIGN.md §4):
the *shape* of Figure 4 — SHB utilization linear in subscriber count, a
small constant GD-vs-best-effort gap at the SHB, a larger constant gap at
the PHB due to logging — is produced by the structure of the charges, not
by the absolute constants.

The accountant doubles as a single-server work queue: ``charge`` returns
the time at which the charged work completes, so callers can schedule
effects (e.g. handing a message to a subscriber socket) at the completion
time.  Queueing delay under load is what makes remote latency grow with
subscriber count in Figure 5.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

__all__ = ["CostModel", "CpuAccountant"]


@dataclass(frozen=True)
class CostModel:
    """CPU seconds charged per action.

    Defaults are calibrated so the two-broker overhead experiment
    (2000 msgs/s in, up to 16000 subscribers at 2 msgs/s each) lands in
    the paper's utilization range without saturating, and the GD deltas
    match the paper's "<4% at the SHB, ~8% at the PHB".
    """

    #: Receiving + parsing one broker-to-broker message.
    msg_receive: float = 8e-6
    #: Matching one event against the subscription set (amortized; the
    #: indexed matcher's per-event cost is roughly constant).
    match: float = 6e-6
    #: Writing one message to one subscriber connection.
    client_send: float = 14e-6
    #: Sending one broker-to-broker message.
    broker_send: float = 8e-6
    #: Appending one message to the stable log (GD only, PHB only).
    log_append: float = 40e-6
    #: Knowledge/curiosity stream bookkeeping per message (GD only).
    #: Calibrated against the batched accumulate paths: with the
    #: IntervalMap tail-append fast path the per-message bookkeeping is a
    #: constant-time append rather than a splice, so the constant stays
    #: small and independent of stream length.
    knowledge_update: float = 3e-6
    #: Assembling one coalesced knowledge flush (flush_delay > 0): walking
    #: the ostream delta above the sent watermark and building the merged
    #: message.  Charged once per flush, amortizing knowledge_update over
    #: every publication folded into the batch.
    knowledge_flush: float = 5e-6
    #: Per-subscriber-delivery GD bookkeeping at the SHB.  The paper's
    #: consolidation optimization makes GD state *shared* across all
    #: subends at an SHB, so this is charged once per message, not per
    #: subscriber — which is exactly why the GD-vs-BE gap stays constant
    #: as subscribers grow.
    gd_subend_update: float = 2e-6
    #: Processing an ack/nack/control message.
    control: float = 4e-6


class CpuAccountant:
    """Single-server CPU accounting for one broker.

    Tracks total busy time and, as a work queue, when charged work
    completes.  ``utilization(t0, t1)`` reports the fraction of the window
    the CPU was busy.
    """

    def __init__(self, clock, capacity: float = 1.0):
        """``clock`` is a zero-arg callable returning the current time."""
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self._clock = clock
        self.capacity = capacity
        self._busy_until = 0.0
        self._busy_accum = 0.0
        self._window_start: Optional[float] = None
        self._by_category: Dict[str, float] = {}

    def charge(self, cost: float, category: str = "misc") -> float:
        """Charge ``cost`` CPU-seconds; returns the completion time.

        Work is serialized: if the CPU is already busy, the new work
        starts when the backlog drains.  ``capacity`` scales service rate
        (a 2-capacity accountant does one second of work in half a
        second of wall time).
        """
        if cost < 0:
            raise ValueError("cost must be non-negative")
        now = self._clock()
        service = cost / self.capacity
        start = max(now, self._busy_until)
        self._busy_until = start + service
        self._busy_accum += service
        self._by_category[category] = self._by_category.get(category, 0.0) + service
        return self._busy_until

    def queue_delay(self) -> float:
        """Current backlog: how long newly charged work would wait."""
        return max(0.0, self._busy_until - self._clock())

    @property
    def busy_time(self) -> float:
        return self._busy_accum

    def by_category(self) -> Dict[str, float]:
        return dict(self._by_category)

    def reset_window(self) -> None:
        """Start a measurement window at the current time."""
        self._window_start = self._clock()
        self._busy_accum = 0.0
        self._by_category.clear()

    def utilization(self) -> float:
        """Busy fraction since :meth:`reset_window` (or since t=0)."""
        start = self._window_start if self._window_start is not None else 0.0
        elapsed = self._clock() - start
        if elapsed <= 0:
            return 0.0
        return min(self._busy_accum / elapsed, 1.0)
