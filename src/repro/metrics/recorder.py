"""Measurement collection for experiments.

The paper's evaluation uses three kinds of metrics (section 4): end-to-end
message latency, number of nacks sent, and *nack range* (the cumulative
number of ticks nacked, in milliseconds).  This module collects all three
as time series keyed by the *send time* of the message — the X axis used
in every figure — plus generic reducers (median, mean, percentiles) for
the summary tables.
"""

from __future__ import annotations

import math
import warnings
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

__all__ = [
    "Sample",
    "Series",
    "LatencyRecorder",
    "NackRecorder",
    "MetricsHub",
    "median",
    "percentile",
]


def median(values: Sequence[float]) -> float:
    """Median of a non-empty sequence."""
    return percentile(values, 50.0)


def percentile(values: Sequence[float], pct: float) -> float:
    """Linearly interpolated percentile of a non-empty sequence.

    The rank ``pct/100 * (n-1)`` is interpolated between its two
    neighbouring order statistics (numpy's default ``linear`` method),
    so ``pct=0`` is the minimum, ``pct=100`` the maximum, and a
    single-element sequence returns that element for any ``pct``.
    Raises ``ValueError`` on an empty sequence or ``pct`` outside
    ``[0, 100]``.
    """
    if not values:
        raise ValueError("percentile of empty sequence")
    if not 0.0 <= pct <= 100.0:
        raise ValueError("pct must be within [0, 100]")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (pct / 100.0) * (len(ordered) - 1)
    lower = math.floor(rank)
    upper = math.ceil(rank)
    if lower == upper:
        return ordered[lower]
    weight = rank - lower
    return ordered[lower] * (1.0 - weight) + ordered[upper] * weight


@dataclass(frozen=True)
class Sample:
    """One measurement: X (usually message send time) and value."""

    t: float
    value: float


class Series:
    """An append-only series of samples with simple reducers."""

    def __init__(self, name: str):
        self.name = name
        self.samples: List[Sample] = []

    def add(self, t: float, value: float) -> None:
        self.samples.append(Sample(t, value))

    def values(self) -> List[float]:
        return [s.value for s in self.samples]

    def __len__(self) -> int:
        return len(self.samples)

    def median(self) -> float:
        return median(self.values())

    def mean(self) -> float:
        values = self.values()
        return sum(values) / len(values)

    def max(self) -> float:
        return max(self.values())

    def percentile(self, pct: float) -> float:
        return percentile(self.values(), pct)

    def between(self, t0: float, t1: float) -> "Series":
        """The sub-series with ``t0 <= t < t1``."""
        out = Series(self.name)
        out.samples = [s for s in self.samples if t0 <= s.t < t1]
        return out

    def cumulative(self) -> List[Tuple[float, float]]:
        """Running sum of values, as (t, cumulative) pairs — the form of
        the paper's nack-range plots."""
        total = 0.0
        points = []
        for sample in sorted(self.samples, key=lambda s: s.t):
            total += sample.value
            points.append((sample.t, total))
        return points


class LatencyRecorder:
    """End-to-end delivery latency, per subscriber.

    ``record`` is called by subscriber clients with the message's original
    send (publish) time and the delivery time.
    """

    def __init__(self) -> None:
        self._series: Dict[str, Series] = {}
        self.delivered = 0

    def record(self, subscriber: str, send_time: float, recv_time: float) -> None:
        series = self._series.setdefault(subscriber, Series(subscriber))
        series.add(send_time, recv_time - send_time)
        self.delivered += 1

    def series(self, subscriber: str) -> Series:
        return self._series.setdefault(subscriber, Series(subscriber))

    def subscribers(self) -> List[str]:
        return sorted(self._series)

    def all_values(self) -> List[float]:
        out: List[float] = []
        for series in self._series.values():
            out.extend(series.values())
        return out

    def merged(self) -> Series:
        merged = Series("all")
        for series in self._series.values():
            merged.samples.extend(series.samples)
        merged.samples.sort(key=lambda s: s.t)
        return merged


class NackRecorder:
    """Nack counts and nack ranges, per sending node.

    The *nack range* of one nack message is the number of ticks (ms) it
    requests; the paper plots the cumulative range per node, which is how
    it demonstrates consolidation (b2's cumulative range is about half of
    s1 + s2 combined in Figure 7).
    """

    def __init__(self) -> None:
        self._series: Dict[str, Series] = {}

    def record(self, node: str, t: float, tick_count: int) -> None:
        series = self._series.setdefault(node, Series(node))
        series.add(t, float(tick_count))

    def count(self, node: str) -> int:
        return len(self._series.get(node, Series(node)))

    def total_range(self, node: str) -> float:
        series = self._series.get(node)
        return sum(series.values()) if series else 0.0

    def series(self, node: str) -> Series:
        return self._series.setdefault(node, Series(node))

    def nodes(self) -> List[str]:
        return sorted(self._series)


def __getattr__(name: str):
    # Deprecated: MetricsHub moved to repro.obs.hub when the unified
    # observability layer was introduced (it is owned by Observability
    # now).  The old import path keeps working, with a warning.
    if name == "MetricsHub":
        warnings.warn(
            "repro.metrics.recorder.MetricsHub moved to repro.obs.hub; "
            "import it from repro.obs (or repro) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        from ..obs.hub import MetricsHub

        return MetricsHub
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
