"""Comparison protocols: best-effort delivery and DCP-like store-and-forward."""

from .best_effort import BEMessage, BestEffortBroker
from .store_forward import SFAck, SFMessage, StoreForwardBroker
