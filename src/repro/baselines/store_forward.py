"""Store-and-forward (DCP-like) hop-by-hop reliable baseline.

The related-work comparison (paper section 5): message-queueing systems
and DCP guarantee delivery by making each hop a reliable sender for the
next — every broker logs each message and reconstructs a *gapless* stream
before forwarding, so "the entire stream is delayed when a single gap is
found", and logging cost is paid at every hop rather than only at the
publishing broker.

The implementation is deliberately structured like that description:

* per (pubend, hop) sequence numbers, a cursor of the next sequence
  expected, and an out-of-order hold-back buffer;
* per-hop acknowledgements; the sender retransmits unacked messages on a
  timer (hop-by-hop reliability);
* per-hop logging cost charged to the CPU accountant, and per-hop commit
  latency added to the forwarding path;
* in-order-only forwarding/delivery: a gap stalls everything behind it.

Interface-compatible with :class:`~repro.broker.simbroker.SimBroker` so
the shared topology/workload harness drives it directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from ..broker.engine import stable_hash
from ..broker.simbroker import SubscriberHooks
from .fanout import LocalFanout
from ..broker.state import BrokerTopologyInfo
from ..core.config import LivenessParams
from ..core.subend import Subscription
from ..core.ticks import Tick, tick_of_time
from ..metrics.cpu import CostModel, CpuAccountant
from ..obs.hub import MetricsHub
from ..obs.observability import Observability
from ..sim.network import SimNetwork
from ..sim.process import SimProcess
from ..sim.scheduler import Scheduler
from ..storage.log import MessageLog

__all__ = ["StoreForwardBroker", "SFMessage", "SFAck"]


@dataclass(frozen=True)
class SFMessage:
    """A sequenced hop-by-hop message."""

    pubend: str
    seq: int
    tick: Tick
    payload: Any


@dataclass(frozen=True)
class SFAck:
    """Cumulative per-hop acknowledgement: all seq < ``up_to`` received."""

    pubend: str
    up_to: int


class _HopSender:
    """Reliable sender state towards one downstream cell."""

    __slots__ = ("cell", "next_seq", "unacked")

    def __init__(self, cell: str):
        self.cell = cell
        self.next_seq = 0
        #: seq -> message awaiting cumulative ack.
        self.unacked: Dict[int, SFMessage] = {}


class _HopReceiver:
    """Gapless reassembly state from the upstream hop."""

    __slots__ = ("next_expected", "buffer")

    def __init__(self) -> None:
        self.next_expected = 0
        #: seq -> message held back because of a gap below it.
        self.buffer: Dict[int, SFMessage] = {}


class StoreForwardBroker(SimProcess):
    """Hop-by-hop reliable store-and-forward broker."""

    #: Retransmission timer for unacked hop messages.
    RETRANSMIT_INTERVAL = 0.3

    def __init__(
        self,
        node_id: str,
        network: SimNetwork,
        scheduler: Scheduler,
        topo: BrokerTopologyInfo,
        params: LivenessParams,
        metrics: Optional[MetricsHub] = None,
        cost_model: Optional[CostModel] = None,
        client_latency: float = 0.0005,
        hop_commit_latency: float = 0.02,
        obs: Optional[Observability] = None,
    ):
        super().__init__(node_id, network, scheduler)
        self.topo = topo
        self.params = params
        if obs is None:
            obs = Observability(hub=metrics)
        self.obs = obs
        self.metrics = metrics if metrics is not None else obs.hub
        self.cost_model = cost_model if cost_model is not None else CostModel()
        self.client_latency = client_latency
        self.hop_commit_latency = hop_commit_latency
        self.accountant = CpuAccountant(lambda: scheduler.now)
        self.obs.register_accountant(node_id, self.accountant)
        self._fanout = LocalFanout()
        self._senders: Dict[Tuple[str, str], _HopSender] = {}
        self._receivers: Dict[str, _HopReceiver] = {}
        self._last_tick: Dict[str, Tick] = {}
        self.retransmissions = 0
        self._started = False

    # -- SimBroker-compatible surface ---------------------------------------

    def host_pubend(
        self,
        pubend_id: str,
        log: MessageLog,
        slot: int = 0,
        n_slots: int = 1,
        preassign_window: Optional[float] = None,
    ) -> None:
        self._last_tick.setdefault(pubend_id, -1)

    def add_subscription(
        self, subscription: Subscription, client: Optional[SubscriberHooks] = None
    ) -> None:
        self._fanout.add(subscription, client)

    def start(self) -> None:
        self._started = True
        self.every(self.RETRANSMIT_INTERVAL, self._retransmit_unacked)

    # -- data path ------------------------------------------------------------

    def publish(self, pubend_id: str, payload: Any) -> Optional[Tick]:
        if not self.alive:
            return None
        self.accountant.charge(
            self.cost_model.msg_receive + self.cost_model.log_append, "publish"
        )
        tick = max(
            tick_of_time(self.scheduler.now), self._last_tick.get(pubend_id, -1) + 1
        )
        self._last_tick[pubend_id] = tick
        message = SFMessage(pubend_id, -1, tick, payload)
        # The publishing hop also pays commit latency before forwarding.
        self.schedule(self.hop_commit_latency, lambda: self._emit(message))
        return tick

    def _emit(self, message: SFMessage) -> None:
        self._deliver_local(message)
        self._forward(message)

    def on_message(self, src: str, message: Any) -> None:
        if isinstance(message, SFAck):
            self._on_ack(src, message)
            return
        if not isinstance(message, SFMessage):
            return
        self.accountant.charge(
            self.cost_model.msg_receive + self.cost_model.log_append, "receive"
        )
        receiver = self._receivers.setdefault(message.pubend, _HopReceiver())
        if message.seq < receiver.next_expected:
            # Duplicate of something already reassembled; re-ack.
            self._ack_upstream(src, message.pubend, receiver.next_expected)
            return
        receiver.buffer[message.seq] = message
        released: List[SFMessage] = []
        while receiver.next_expected in receiver.buffer:
            released.append(receiver.buffer.pop(receiver.next_expected))
            receiver.next_expected += 1
        self._ack_upstream(src, message.pubend, receiver.next_expected)
        for ready in released:
            # Gapless reconstruction: each hop logs, then forwards after
            # its own commit latency.
            self.schedule(self.hop_commit_latency, lambda m=ready: self._emit(m))

    def _ack_upstream(self, src: str, pubend: str, up_to: int) -> None:
        self.accountant.charge(self.cost_model.control, "ack")
        self.send(src, SFAck(pubend, up_to), 48)

    def _on_ack(self, src: str, ack: SFAck) -> None:
        cell = self.topo.cell_of.get(src)
        if cell is None:
            return
        sender = self._senders.get((ack.pubend, cell))
        if sender is None:
            return
        for seq in [s for s in sender.unacked if s < ack.up_to]:
            del sender.unacked[seq]

    def _forward(self, message: SFMessage) -> None:
        route = self.topo.routes.get(message.pubend)
        if route is None:
            return
        for cell, filter_edge in route.downstream.items():
            if not filter_edge.matches(message.payload):
                continue
            sender = self._senders.setdefault(
                (message.pubend, cell), _HopSender(cell)
            )
            hop_message = SFMessage(
                message.pubend, sender.next_seq, message.tick, message.payload
            )
            sender.next_seq += 1
            sender.unacked[hop_message.seq] = hop_message
            self._send_hop(hop_message, cell)

    def _send_hop(self, message: SFMessage, cell: str) -> None:
        candidates = [
            n
            for n in self.topo.adjacent_in_cell(cell)
            if self.network.link_is_usable(self.node_id, n)
        ]
        if not candidates:
            return
        target = candidates[stable_hash(message.pubend) % len(candidates)]
        self.accountant.charge(self.cost_model.broker_send, "send")
        self.send(target, message, 100)

    def _retransmit_unacked(self) -> None:
        for (pubend, cell), sender in self._senders.items():
            for seq in sorted(sender.unacked):
                self.retransmissions += 1
                self._send_hop(sender.unacked[seq], cell)

    def _deliver_local(self, message: SFMessage) -> None:
        if not self._fanout.has_subscribers(message.pubend):
            return
        self.accountant.charge(self.cost_model.match, "match")
        for subscription in self._fanout.matching(message.pubend, message.payload):
            completion = self.accountant.charge(self.cost_model.client_send, "fanout")
            client = self._fanout.client_of(subscription.subscriber)
            if client is None:
                continue
            delay = (completion - self.scheduler.now) + self.client_latency
            self.schedule(
                delay,
                lambda c=client, m=message: c.on_delivery(
                    m.pubend, m.tick, m.payload, self.scheduler.now
                ),
            )
