"""Shared subscriber fan-out for the baseline brokers.

Both baselines deliver to locally connected subscribers exactly like the
GD SHB does — one matching pass per event over an indexed subscription
set, one CPU-charged socket write per matching subscriber — so that CPU
and latency comparisons against GD isolate the *protocol* difference, not
a difference in fan-out implementations.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional

from ..broker.simbroker import SubscriberHooks
from ..core.subend import Subscription
from ..matching.ast import Predicate as AstPredicate
from ..matching.tree import MatchingTree

__all__ = ["LocalFanout"]


class LocalFanout:
    """Indexed local delivery used by the baseline brokers."""

    def __init__(self) -> None:
        self._subscriptions: List[Subscription] = []
        self._clients: Dict[str, SubscriberHooks] = {}
        self._matcher = MatchingTree()
        self._indexed: set = set()
        self._by_pubend: Dict[str, List[Subscription]] = {}

    def add(self, subscription: Subscription, client: Optional[SubscriberHooks]) -> None:
        self._subscriptions.append(subscription)
        if client is not None:
            self._clients[subscription.subscriber] = client
        if isinstance(subscription.predicate, AstPredicate):
            self._matcher.add(subscription.subscriber, subscription.predicate)
            self._indexed.add(subscription.subscriber)
        for pubend in subscription.pubends:
            self._by_pubend.setdefault(pubend, []).append(subscription)

    def has_subscribers(self, pubend: str) -> bool:
        return bool(self._by_pubend.get(pubend))

    def matching(self, pubend: str, payload: Any) -> List[Subscription]:
        candidates = self._by_pubend.get(pubend, ())
        if not candidates:
            return []
        matched_ids = None
        if isinstance(payload, Mapping):
            matched_ids = self._matcher.match(payload)
        out: List[Subscription] = []
        for subscription in candidates:
            if subscription.subscriber in self._indexed:
                if matched_ids is not None and subscription.subscriber in matched_ids:
                    out.append(subscription)
            elif subscription.predicate(payload):
                out.append(subscription)
        return out

    def client_of(self, subscriber: str) -> Optional[SubscriberHooks]:
        return self._clients.get(subscriber)
