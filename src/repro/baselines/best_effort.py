"""Best-effort delivery baseline.

The comparison protocol of the paper's overhead experiments (section 4.1):
"The best-effort delivery protocol used for comparison does not perform
any knowledge accumulation, curiosity propagation, message logging or
retransmission, and only sends downstream D tick messages."

:class:`BestEffortBroker` is interface-compatible with
:class:`~repro.broker.simbroker.SimBroker` (same ``host_pubend`` /
``add_subscription`` / ``publish`` / ``start`` surface), so the same
topology builder, clients and workloads drive both protocols — the
experiment harness only swaps the broker factory.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional

from ..broker.engine import stable_hash
from ..broker.simbroker import SubscriberHooks
from .fanout import LocalFanout
from ..broker.state import BrokerTopologyInfo
from ..core.config import LivenessParams
from ..core.subend import Subscription
from ..core.ticks import Tick, tick_of_time
from ..metrics.cpu import CostModel, CpuAccountant
from ..obs.hub import MetricsHub
from ..obs.observability import Observability
from ..sim.network import SimNetwork
from ..sim.process import SimProcess
from ..sim.scheduler import Scheduler
from ..storage.log import MessageLog

__all__ = ["BestEffortBroker", "BEMessage"]


@dataclass(frozen=True)
class BEMessage:
    """A bare D-tick message: pubend, tick, payload — nothing else."""

    pubend: str
    tick: Tick
    payload: Any

    def to_wire(self) -> Dict[str, Any]:
        return {"kind": "be", "pubend": self.pubend, "t": self.tick, "p": self.payload}


class BestEffortBroker(SimProcess):
    """A broker that forwards data messages and remembers nothing."""

    def __init__(
        self,
        node_id: str,
        network: SimNetwork,
        scheduler: Scheduler,
        topo: BrokerTopologyInfo,
        params: LivenessParams,
        metrics: Optional[MetricsHub] = None,
        cost_model: Optional[CostModel] = None,
        client_latency: float = 0.0005,
        obs: Optional[Observability] = None,
    ):
        super().__init__(node_id, network, scheduler)
        self.topo = topo
        self.params = params
        if obs is None:
            obs = Observability(hub=metrics)
        self.obs = obs
        self.metrics = metrics if metrics is not None else obs.hub
        self.cost_model = cost_model if cost_model is not None else CostModel()
        self.client_latency = client_latency
        self.accountant = CpuAccountant(lambda: scheduler.now)
        self.obs.register_accountant(node_id, self.accountant)
        self._fanout = LocalFanout()
        self._last_tick: Dict[str, Tick] = {}

    # -- SimBroker-compatible configuration surface -------------------------

    def host_pubend(
        self,
        pubend_id: str,
        log: MessageLog,
        slot: int = 0,
        n_slots: int = 1,
        preassign_window: Optional[float] = None,
    ) -> None:
        """Accepted for interface compatibility; best effort never logs."""
        self._last_tick.setdefault(pubend_id, -1)

    def add_subscription(
        self, subscription: Subscription, client: Optional[SubscriberHooks] = None
    ) -> None:
        self._fanout.add(subscription, client)

    def start(self) -> None:
        """Best effort has no timers."""

    # -- data path ---------------------------------------------------------

    def publish(self, pubend_id: str, payload: Any) -> Optional[Tick]:
        if not self.alive:
            return None
        self.accountant.charge(self.cost_model.msg_receive, "publish")
        tick = max(tick_of_time(self.scheduler.now), self._last_tick.get(pubend_id, -1) + 1)
        self._last_tick[pubend_id] = tick
        self._handle(BEMessage(pubend_id, tick, payload))
        return tick

    def on_message(self, src: str, message: Any) -> None:
        if not isinstance(message, BEMessage):
            return
        self.accountant.charge(self.cost_model.msg_receive, "receive")
        self._handle(message)

    def _handle(self, message: BEMessage) -> None:
        self._deliver_local(message)
        self._forward(message)

    def _deliver_local(self, message: BEMessage) -> None:
        if not self._fanout.has_subscribers(message.pubend):
            return
        # One matching pass per message (same consolidated cost structure
        # as GD's SHB, minus the GD bookkeeping).
        self.accountant.charge(self.cost_model.match, "match")
        for subscription in self._fanout.matching(message.pubend, message.payload):
            completion = self.accountant.charge(self.cost_model.client_send, "fanout")
            client = self._fanout.client_of(subscription.subscriber)
            if client is None:
                continue
            delay = (completion - self.scheduler.now) + self.client_latency
            self.schedule(
                delay,
                lambda c=client, m=message: c.on_delivery(
                    m.pubend, m.tick, m.payload, self.scheduler.now
                ),
            )

    def _forward(self, message: BEMessage) -> None:
        route = self.topo.routes.get(message.pubend)
        if route is None:
            return
        for cell, filter_edge in route.downstream.items():
            if not filter_edge.matches(message.payload):
                continue
            candidates = [
                n
                for n in self.topo.adjacent_in_cell(cell)
                if self.network.link_is_usable(self.node_id, n)
            ]
            if not candidates:
                continue
            target = candidates[stable_hash(message.pubend) % len(candidates)]
            self.accountant.charge(self.cost_model.broker_send, "send")
            self.send(target, message, 100)
