"""Gryphon guaranteed delivery — exactly-once content-based publish-subscribe.

A from-scratch reproduction of *"Exactly-once Delivery in a Content-based
Publish-Subscribe System"* (Bhola, Strom, Bagchi, Zhao, Auerbach — DSN
2002): the knowledge/curiosity model, the guaranteed-delivery broker
protocol with soft state and stable storage only at the publishing
broker, cells and link bundles with sideways routing, content-based
matching, a deterministic discrete-event simulator used as the evaluation
substrate, fault injection, and best-effort / store-and-forward baselines.

Quickstart::

    from repro import figure3_topology, LivenessParams

    system = figure3_topology(n_pubends=1).build(seed=7)
    alice = system.subscribe("alice", "s1", ("P0",), "price > 10")
    pub = system.publisher("P0", rate=25.0,
                           make_attributes=lambda i: {"price": i})
    pub.start(at=0.5)
    system.run_until(5.0)
    print(alice.count(), "messages delivered exactly once, in order")
"""

from .check import (
    ORACLES,
    FuzzReport,
    OracleFailure,
    OracleSuite,
    RunResult,
    Scenario,
    fuzz,
    run_scenario,
    run_seed,
    scenario_seed,
    shrink,
)
from .client import DeliveryChecker, PublisherClient, SubscriberClient
from .core.config import INFINITY, PAPER_FAULT_PARAMS, LivenessParams
from .facade import SystemFacade
from .core.edges import FilterEdge, MergeView, MATCH_ALL
from .core.lattice import C, K
from .core.messages import (
    AckExpectedMessage,
    AckMessage,
    DataTick,
    KnowledgeMessage,
    NackMessage,
)
from .core.pubend import Pubend
from .core.streams import CuriosityStream, KnowledgeStream, Stream
from .core.subend import SubendManager, Subscription
from .core.ticks import Tick, TickRange
from .faults.injector import FaultInjector
from .matching.ast import Predicate
from .matching.engine import BruteForceMatcher, IndexedMatcher
from .matching.tree import MatchingTree
from .matching.events import Event
from .matching.parser import parse as parse_subscription
from .metrics.cpu import CostModel, CpuAccountant
from .obs.exporters import json_lines, parse_prometheus, prometheus_text
from .obs.hub import MetricsHub
from .obs.instruments import Instruments, ScopedTimer
from .obs.observability import Observability
from .obs.trace import TraceEvent, Tracer
from .storage.log import FileLog, MemoryLog
from .topology import System, Topology, figure3_topology, two_broker_topology

__version__ = "1.0.0"

__all__ = [
    "AckExpectedMessage",
    "AckMessage",
    "BruteForceMatcher",
    "C",
    "CostModel",
    "CpuAccountant",
    "CuriosityStream",
    "DataTick",
    "DeliveryChecker",
    "Event",
    "FaultInjector",
    "FileLog",
    "FilterEdge",
    "FuzzReport",
    "INFINITY",
    "IndexedMatcher",
    "Instruments",
    "K",
    "KnowledgeMessage",
    "KnowledgeStream",
    "LivenessParams",
    "MATCH_ALL",
    "MatchingTree",
    "MemoryLog",
    "MergeView",
    "MetricsHub",
    "NackMessage",
    "ORACLES",
    "Observability",
    "OracleFailure",
    "OracleSuite",
    "PAPER_FAULT_PARAMS",
    "Predicate",
    "Pubend",
    "PublisherClient",
    "RunResult",
    "Scenario",
    "ScopedTimer",
    "Stream",
    "SubendManager",
    "SubscriberClient",
    "Subscription",
    "System",
    "SystemFacade",
    "Tick",
    "TickRange",
    "Topology",
    "TraceEvent",
    "Tracer",
    "figure3_topology",
    "fuzz",
    "json_lines",
    "parse_prometheus",
    "parse_subscription",
    "prometheus_text",
    "run_scenario",
    "run_seed",
    "scenario_seed",
    "shrink",
    "two_broker_topology",
    "__version__",
]
